(** Intra-invocation parallelization techniques (dissertation §2.2).

    Each technique defines how one inner-loop iteration executes on one
    worker thread; {!Barrier_exec} supplies the loop driving and the global
    synchronization between invocations. *)

type technique =
  | Doall  (** iterations provably independent; cyclic distribution *)
  | Doany  (** commutative conflicting updates protected by a lock array *)
  | Localwrite
      (** every thread visits every iteration; writes applied by the owner of
          the written partition; non-write statements computed redundantly *)
  | Spec_doall
      (** iterations speculated independent; per-iteration validation cost *)

val name : technique -> string

val of_name : string -> technique option

val visits_all_iterations : technique -> bool

type ctx = {
  machine : Xinv_sim.Machine.t;
  threads : int;
  tid : int;
  locks : Xinv_sim.Mutex.t array;  (** shared lock array for DOANY *)
  nlocks : int;
  total_words : int;  (** size of the flat address space *)
}

val make_ctx :
  machine:Xinv_sim.Machine.t ->
  threads:int ->
  tid:int ->
  locks:Xinv_sim.Mutex.t array ->
  total_words:int ->
  ctx

val owner : ctx -> Xinv_ir.Env.t -> Xinv_ir.Access.t -> int
(** LOCALWRITE owner of a write access: contiguous block partition of the
    written array across worker threads. *)

val exec_iteration : technique -> ctx -> Xinv_ir.Env.t -> Xinv_ir.Program.inner -> unit
(** Execute (or, for LOCALWRITE non-owners, visit) the iteration whose
    induction values are in the environment. *)
