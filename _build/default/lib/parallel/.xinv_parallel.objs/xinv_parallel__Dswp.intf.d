lib/parallel/dswp.mli: Run Xinv_ir Xinv_sim
