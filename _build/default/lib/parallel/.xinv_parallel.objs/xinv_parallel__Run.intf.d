lib/parallel/run.mli: Format Xinv_sim
