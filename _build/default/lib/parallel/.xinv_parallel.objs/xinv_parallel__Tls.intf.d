lib/parallel/tls.mli: Run Xinv_ir Xinv_sim
