lib/parallel/plan.ml: Intra List Printf String Xinv_ir
