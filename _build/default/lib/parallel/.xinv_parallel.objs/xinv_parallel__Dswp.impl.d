lib/parallel/dswp.ml: Array Hashtbl List Printf Run Xinv_ir Xinv_sim
