lib/parallel/barrier_exec.mli: Intra Run Xinv_ir Xinv_sim
