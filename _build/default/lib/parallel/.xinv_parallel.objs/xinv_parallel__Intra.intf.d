lib/parallel/intra.mli: Xinv_ir Xinv_sim
