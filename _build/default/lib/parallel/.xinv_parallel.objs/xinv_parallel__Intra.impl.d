lib/parallel/intra.ml: Array List Stdlib String Xinv_ir Xinv_sim
