lib/parallel/inspector.mli: Run Xinv_ir Xinv_sim
