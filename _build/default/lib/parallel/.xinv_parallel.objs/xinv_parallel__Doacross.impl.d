lib/parallel/doacross.ml: Hashtbl List Printf Run Xinv_ir Xinv_sim
