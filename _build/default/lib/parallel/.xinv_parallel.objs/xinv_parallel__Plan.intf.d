lib/parallel/plan.mli: Intra Xinv_ir
