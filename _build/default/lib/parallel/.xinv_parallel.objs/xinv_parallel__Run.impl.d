lib/parallel/run.ml: Format Xinv_sim
