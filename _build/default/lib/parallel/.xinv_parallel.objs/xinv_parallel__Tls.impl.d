lib/parallel/tls.ml: Hashtbl List Printf Run Xinv_ir Xinv_sim
