lib/parallel/doacross.mli: Run Xinv_ir Xinv_sim
