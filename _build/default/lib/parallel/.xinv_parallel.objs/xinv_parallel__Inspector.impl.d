lib/parallel/inspector.ml: Array Hashtbl List Printf Run Stdlib Xinv_ir Xinv_sim
