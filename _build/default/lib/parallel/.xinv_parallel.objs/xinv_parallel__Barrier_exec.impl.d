lib/parallel/barrier_exec.ml: Array Intra List Printf Run Xinv_ir Xinv_sim
