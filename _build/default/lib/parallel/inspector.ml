module Sim = Xinv_sim
module Ir = Xinv_ir

(* Topological wavefront per iteration: a read depends on the last write of
   the address, a write on the last write and on every read since it. *)
let wavefronts (slice : Ir.Slice.t) env ~trip =
  let last_write : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let max_read : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let wave = Array.make trip 0 in
  let get tbl addr = match Hashtbl.find_opt tbl addr with Some w -> w | None -> -1 in
  for j = 0 to trip - 1 do
    let env_j = Ir.Env.with_inner env j in
    let raddrs = Ir.Slice.read_addresses slice env_j in
    let waddrs = Ir.Slice.write_addresses slice env_j in
    let req = ref (-1) in
    List.iter (fun a -> req := Stdlib.max !req (get last_write a)) raddrs;
    List.iter
      (fun a ->
        req := Stdlib.max !req (get last_write a);
        req := Stdlib.max !req (get max_read a))
      waddrs;
    wave.(j) <- !req + 1;
    List.iter
      (fun a -> Hashtbl.replace max_read a (Stdlib.max (get max_read a) wave.(j)))
      raddrs;
    List.iter
      (fun a ->
        Hashtbl.replace last_write a wave.(j);
        Hashtbl.remove max_read a)
      waddrs
  done;
  wave

let run ?(machine = Sim.Machine.default) ~threads ~(plan : Ir.Mtcg.plan)
    (p : Ir.Program.t) env =
  assert (threads > 0);
  let eng = Sim.Engine.create () in
  let bar = Sim.Barrier.create ~parties:threads in
  let barrier_cost =
    machine.Sim.Machine.barrier_base
    +. (machine.Sim.Machine.barrier_per_thread *. float_of_int threads)
  in
  let wf = Sim.Machine.work_factor machine ~threads in
  let tasks = ref 0 and invocations = ref 0 in
  (* The inspection result for the current invocation, published by thread 0
     before the wavefront barrier releases the others. *)
  let current = ref [||] in
  let worker tid () =
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          if tid = 0 then
            List.iter (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_t) il.Ir.Program.pre;
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (wf *. s.Ir.Stmt.cost env_t))
            il.Ir.Program.pre;
          let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
          let trip = il.Ir.Program.trip env_t in
          (* Inspection phase: serialized on thread 0 while the others wait
             at the barrier. *)
          if tid = 0 then begin
            incr invocations;
            tasks := !tasks + trip;
            Sim.Proc.advance ~label:"inspect" Sim.Category.Runtime
              ((Ir.Slice.cost_per_iter slice +. machine.Sim.Machine.shadow_per_addr)
              *. float_of_int trip);
            current := wavefronts slice env_t ~trip
          end;
          Sim.Barrier.wait ~cost:barrier_cost bar;
          let wave = !current in
          let nwaves =
            Array.fold_left (fun acc w -> Stdlib.max acc (w + 1)) 0 wave
          in
          for w = 0 to nwaves - 1 do
            (* Iterations of one wavefront, distributed cyclically. *)
            let k = ref 0 in
            for j = 0 to trip - 1 do
              if wave.(j) = w then begin
                if !k mod threads = tid then begin
                  let env_j = Ir.Env.with_inner env_t j in
                  List.iter
                    (fun (s : Ir.Stmt.t) ->
                      Sim.Proc.work ~label:s.Ir.Stmt.name (wf *. s.Ir.Stmt.cost env_j);
                      s.Ir.Stmt.exec env_j)
                    il.Ir.Program.body
                end;
                incr k
              end
            done;
            Sim.Barrier.wait ~cost:barrier_cost bar
          done)
        p.Ir.Program.inners
    done
  in
  for tid = 0 to threads - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "ie%d" tid) (worker tid))
  done;
  Sim.Engine.run eng;
  Run.make ~technique:"Inspector-Executor" ~threads ~makespan:(Sim.Engine.now eng)
    ~engine:eng ~tasks:!tasks ~invocations:!invocations
    ~barrier_episodes:(Sim.Barrier.waits bar) ()
