(** Parallelization planning: pick an intra-invocation technique per inner
    loop and decide DOMORE / SPECCROSS applicability (Table 5.1).

    The automatic rules mirror the dissertation's pipeline: DOALL when static
    analysis proves iterations independent; DOANY when the only conflicting
    statements commute; Spec-DOALL when conflicts are possible statically but
    profiling shows none manifest within invocations; LOCALWRITE when
    irregular writes partition by owner. *)

type choice = {
  label : string;
  technique : Intra.technique;
  reason : string;
}

val choose :
  ?profile:Xinv_ir.Profile.result ->
  Xinv_ir.Program.t ->
  choice list
(** One choice per inner loop, or raises [Failure] when some inner loop
    cannot be handled by any of the four techniques. *)

val technique_for : choice list -> string -> Intra.technique

val speccross_applicable : Xinv_ir.Program.t -> (unit, string) result
(** SPECCROSS preconditions (dissertation §4.3): every inner loop
    parallelizable non-speculatively, sequential code privatizable (no
    side-effecting pre statements), no irreversible operations in bodies. *)

val domore_applicable : Xinv_ir.Program.t -> Xinv_ir.Env.t -> (unit, string) result
(** DOMORE preconditions: the MTCG pipeline succeeds (partition, slice,
    performance guard). *)
