(** Inspector-Executor baseline (dissertation §2.2, Saltz et al.).

    Before each invocation, an inspector pass evaluates every iteration's
    predicted addresses (the same [computeAddr] slice DOMORE uses), builds
    the iteration dependence DAG, and assigns each iteration a wavefront
    number; iterations of one wavefront then execute concurrently, with a
    barrier between wavefronts and between invocations.  Unlike DOMORE the
    inspection is serialized with execution and no iteration crosses an
    invocation boundary. *)

val wavefronts :
  Xinv_ir.Slice.t -> Xinv_ir.Env.t -> trip:int -> int array
(** Wavefront number (0-based topological level of the dependence DAG) per
    iteration of the invocation whose outer index is set in the
    environment. *)

val run :
  ?machine:Xinv_sim.Machine.t ->
  threads:int ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
(** Simulates inspector-executor execution; mutates the environment's memory
    to the final state.  Requires the same sliceability as DOMORE (use
    {!Xinv_ir.Mtcg.generate}). *)
