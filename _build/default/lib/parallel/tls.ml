module Sim = Xinv_sim
module Ir = Xinv_ir

let run ?(machine = Sim.Machine.default) ~threads ~(plan : Ir.Mtcg.plan)
    (p : Ir.Program.t) env =
  assert (threads > 0);
  let eng = Sim.Engine.create () in
  let bar = Sim.Barrier.create ~parties:threads in
  let barrier_cost =
    machine.Sim.Machine.barrier_base
    +. (machine.Sim.Machine.barrier_per_thread *. float_of_int threads)
  in
  let wf = Sim.Machine.work_factor machine ~threads in
  let tasks = ref 0 and invocations = ref 0 and squashes = ref 0 in
  (* Per-invocation commit token and per-address last committed writer, both
     recreated per invocation occurrence (allocated up front). *)
  let committed = Hashtbl.create 64 in
  let ninners = List.length p.Ir.Program.inners in
  for t = 0 to p.Ir.Program.outer_trip - 1 do
    for ii = 0 to ninners - 1 do
      Hashtbl.replace committed (t, ii) (Sim.Mono_cell.create ~init:(-1) ())
    done
  done;
  let last_writer : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let worker tid () =
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iteri
        (fun ii (il : Ir.Program.inner) ->
          if tid = 0 then begin
            List.iter (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_t) il.Ir.Program.pre;
            incr invocations;
            Hashtbl.reset last_writer
          end;
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (wf *. s.Ir.Stmt.cost env_t))
            il.Ir.Program.pre;
          let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          let cell = Hashtbl.find committed (t, ii) in
          let j = ref tid in
          while !j < trip do
            let env_j = Ir.Env.with_inner env_t !j in
            let speculative_cost () =
              List.fold_left
                (fun acc (s : Ir.Stmt.t) -> acc +. (wf *. s.Ir.Stmt.cost env_j))
                0. il.Ir.Program.body
            in
            (* Speculative execution: pay the work and the validation
               bookkeeping; remember which commits were visible at start. *)
            let start_commit = Sim.Mono_cell.get cell in
            let raddrs = Ir.Slice.read_addresses slice env_j in
            let waddrs = Ir.Slice.write_addresses slice env_j in
            Sim.Proc.advance ~label:"track" Sim.Category.Runtime
              (machine.Sim.Machine.sig_per_access
              *. float_of_int (List.length raddrs + List.length waddrs));
            Sim.Proc.work ~label:"spec-work" (speculative_cost ());
            (* In-order commit. *)
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cell (!j - 1);
            let dirty addr =
              match Hashtbl.find_opt last_writer addr with
              | Some w -> w > start_commit && w < !j
              | None -> false
            in
            if List.exists dirty raddrs || List.exists dirty waddrs then begin
              (* Violation: squash and re-execute against committed state. *)
              incr squashes;
              Sim.Proc.work ~label:"re-exec" (speculative_cost ())
            end;
            (* Commit: apply semantics in order. *)
            List.iter
              (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_j)
              il.Ir.Program.body;
            List.iter (fun a -> Hashtbl.replace last_writer a !j) waddrs;
            Sim.Proc.advance ~label:"commit" Sim.Category.Runtime 12.;
            Sim.Mono_cell.set cell !j;
            j := !j + threads
          done;
          (* Laggards that own no iteration still release the commit chain. *)
          Sim.Barrier.wait ~cost:barrier_cost bar)
        p.Ir.Program.inners
    done
  in
  for tid = 0 to threads - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "tls%d" tid) (worker tid))
  done;
  Sim.Engine.run eng;
  Run.make ~technique:"TLS+barrier" ~threads ~makespan:(Sim.Engine.now eng) ~engine:eng
    ~tasks:!tasks ~invocations:!invocations ~barrier_episodes:(Sim.Barrier.waits bar)
    ~misspecs:!squashes ()
