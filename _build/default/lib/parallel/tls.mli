(** Thread-level speculation baseline (dissertation §2.2, Figure 2.8).

    Iterations of one invocation execute speculatively in parallel and commit
    in order: a committing iteration validates its predicted read set against
    writes committed while it was in flight, and re-executes on violation.
    Semantics are applied at commit time (in order), so results are always
    exact; misspeculation costs re-execution time.  Barriers still separate
    invocations — TLS is intra-invocation only. *)

val run :
  ?machine:Xinv_sim.Machine.t ->
  threads:int ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
(** [Run.misspecs] counts squashed-and-retried iterations.  Requires the
    same address slice as DOMORE ({!Xinv_ir.Mtcg.generate}). *)
