type technique = Doall | Doany | Localwrite | Spec_doall

let name = function
  | Doall -> "DOALL"
  | Doany -> "DOANY"
  | Localwrite -> "LOCALWRITE"
  | Spec_doall -> "Spec-DOALL"

let of_name s =
  match String.uppercase_ascii s with
  | "DOALL" -> Some Doall
  | "DOANY" -> Some Doany
  | "LOCALWRITE" -> Some Localwrite
  | "SPEC-DOALL" | "SPECDOALL" -> Some Spec_doall
  | _ -> None

let visits_all_iterations = function Localwrite -> true | _ -> false

type ctx = {
  machine : Xinv_sim.Machine.t;
  threads : int;
  tid : int;
  locks : Xinv_sim.Mutex.t array;
  nlocks : int;
  total_words : int;
}

let make_ctx ~machine ~threads ~tid ~locks ~total_words =
  { machine; threads; tid; locks; nlocks = Array.length locks; total_words }

let owner ctx env (a : Xinv_ir.Access.t) =
  let mem = env.Xinv_ir.Env.mem in
  let idx = Xinv_ir.Expr.eval env a.Xinv_ir.Access.index in
  let size = Xinv_ir.Memory.size mem a.Xinv_ir.Access.base in
  assert (idx >= 0 && idx < size);
  idx * ctx.threads / size

let lock_of ctx env (a : Xinv_ir.Access.t) =
  let addr = Xinv_ir.Access.addr env env.Xinv_ir.Env.mem a in
  ctx.locks.(addr * ctx.nlocks / Stdlib.max 1 ctx.total_words)

let exec_stmt ctx env (s : Xinv_ir.Stmt.t) =
  let wf = Xinv_sim.Machine.work_factor ctx.machine ~threads:ctx.threads in
  Xinv_sim.Proc.work ~label:s.Xinv_ir.Stmt.name (wf *. s.Xinv_ir.Stmt.cost env);
  s.Xinv_ir.Stmt.exec env

(* Cost of evaluating the write addresses of a statement (the LOCALWRITE
   ownership check every thread performs on every iteration). *)
let visit_cost (s : Xinv_ir.Stmt.t) =
  List.fold_left
    (fun acc (a : Xinv_ir.Access.t) ->
      acc +. 2.0 +. (1.5 *. float_of_int (Xinv_ir.Expr.size a.Xinv_ir.Access.index)))
    0. s.Xinv_ir.Stmt.writes

let exec_doall ctx env (il : Xinv_ir.Program.inner) =
  List.iter (exec_stmt ctx env) il.Xinv_ir.Program.body

let exec_doany ctx env (il : Xinv_ir.Program.inner) =
  List.iter
    (fun (s : Xinv_ir.Stmt.t) ->
      if s.Xinv_ir.Stmt.commutes && s.Xinv_ir.Stmt.writes <> [] then begin
        let m = lock_of ctx env (List.hd s.Xinv_ir.Stmt.writes) in
        Xinv_sim.Mutex.with_lock m (fun () -> exec_stmt ctx env s)
      end
      else exec_stmt ctx env s)
    il.Xinv_ir.Program.body

let exec_localwrite ctx env (il : Xinv_ir.Program.inner) =
  (* Determine whether this thread owns any write of the iteration; decide
     who executes the non-writing (traversal) statements. *)
  let body = il.Xinv_ir.Program.body in
  let owners_of (s : Xinv_ir.Stmt.t) =
    List.sort_uniq compare (List.map (owner ctx env) s.Xinv_ir.Stmt.writes)
  in
  let my_writes =
    List.filter
      (fun s -> s.Xinv_ir.Stmt.writes <> [] && List.mem ctx.tid (owners_of s))
      body
  in
  let all_owners = List.concat_map owners_of body |> List.sort_uniq compare in
  let executor = match all_owners with o :: _ -> o | [] -> 0 in
  List.iter
    (fun (s : Xinv_ir.Stmt.t) ->
      if s.Xinv_ir.Stmt.writes = [] then begin
        (* Redundant computation on every thread; semantics applied once. *)
        let cat =
          if my_writes <> [] then Xinv_sim.Category.Work else Xinv_sim.Category.Redundant
        in
        let wf = Xinv_sim.Machine.work_factor ctx.machine ~threads:ctx.threads in
        Xinv_sim.Proc.advance ~label:s.Xinv_ir.Stmt.name cat (wf *. s.Xinv_ir.Stmt.cost env);
        if ctx.tid = executor then s.Xinv_ir.Stmt.exec env
      end
      else begin
        let owners = owners_of s in
        assert (List.length owners = 1);
        if List.mem ctx.tid owners then exec_stmt ctx env s
        else
          Xinv_sim.Proc.advance ~label:"own?" Xinv_sim.Category.Redundant (visit_cost s)
      end)
    body

let exec_spec_doall ctx env (il : Xinv_ir.Program.inner) =
  let accesses =
    List.fold_left
      (fun acc (s : Xinv_ir.Stmt.t) -> acc + List.length (Xinv_ir.Stmt.accesses s))
      0 il.Xinv_ir.Program.body
  in
  Xinv_sim.Proc.advance ~label:"validate" Xinv_sim.Category.Runtime
    (ctx.machine.Xinv_sim.Machine.sig_per_access *. float_of_int accesses);
  List.iter (exec_stmt ctx env) il.Xinv_ir.Program.body;
  (* Commit bookkeeping (version check + publish). *)
  Xinv_sim.Proc.advance ~label:"commit" Xinv_sim.Category.Runtime 10.

let exec_iteration tech ctx env il =
  match tech with
  | Doall -> exec_doall ctx env il
  | Doany -> exec_doany ctx env il
  | Localwrite -> exec_localwrite ctx env il
  | Spec_doall -> exec_spec_doall ctx env il
