type scope = Within_invocation | Across_invocations

type dep = {
  src_sid : int;
  dst_sid : int;
  scope : scope;
  src_task : int;
  dst_task : int;
  involves_seq : bool;
}

type pair_stat = { within : int; across : int; outer_iters : int list }

type result = {
  deps : dep list;
  pairs : ((int * int) * pair_stat) list;
  min_task_distance : int option;
  total_tasks : int;
  total_invocations : int;
}

(* Last access bookkeeping per flat address. *)
type mark = { m_sid : int; m_task : int; m_inv : int; m_iter : int; m_seq : bool }

type state = {
  mutable events : dep list;
  mutable n_events : int;
  max_events : int;
  pairs : (int * int, pair_stat) Hashtbl.t;
  last_write : (int, mark) Hashtbl.t;
  last_read : (int, mark) Hashtbl.t;
  mutable min_dist : int option;
}

let record st ~outer (src : mark) (dst : mark) =
  if not (src.m_inv = dst.m_inv && src.m_iter = dst.m_iter && src.m_seq = dst.m_seq)
  then begin
    let scope = if src.m_inv = dst.m_inv then Within_invocation else Across_invocations in
    let involves_seq = src.m_seq || dst.m_seq in
    let key = (src.m_sid, dst.m_sid) in
    let cur =
      try Hashtbl.find st.pairs key
      with Not_found -> { within = 0; across = 0; outer_iters = [] }
    in
    let cur =
      match scope with
      | Within_invocation -> { cur with within = cur.within + 1 }
      | Across_invocations ->
          {
            cur with
            across = cur.across + 1;
            outer_iters =
              (match cur.outer_iters with
              | o :: _ when o = outer -> cur.outer_iters
              | _ -> outer :: cur.outer_iters);
          }
    in
    Hashtbl.replace st.pairs key cur;
    if scope = Across_invocations && not involves_seq then begin
      let d = dst.m_task - src.m_task in
      match st.min_dist with
      | Some m when m <= d -> ()
      | _ -> st.min_dist <- Some d
    end;
    if st.n_events < st.max_events then begin
      st.events <-
        {
          src_sid = src.m_sid;
          dst_sid = dst.m_sid;
          scope;
          src_task = src.m_task;
          dst_task = dst.m_task;
          involves_seq;
        }
        :: st.events;
      st.n_events <- st.n_events + 1
    end
  end

(* Addresses a statement touches in the given context, split by direction.
   Index-array loads count as reads. *)
let read_addrs env (s : Stmt.t) =
  let direct = List.map (fun a -> Access.addr env env.Env.mem a) s.Stmt.reads in
  let idx =
    List.concat_map
      (fun (a : Access.t) ->
        List.map
          (fun (arr, ix) -> Memory.addr env.Env.mem arr (Expr.eval env ix))
          (Expr.loads a.Access.index))
      (Stmt.accesses s)
  in
  direct @ idx

let write_addrs env (s : Stmt.t) =
  List.map (fun a -> Access.addr env env.Env.mem a) s.Stmt.writes

let visit st ~outer env (s : Stmt.t) (mk : int -> mark) =
  let m = mk s.Stmt.sid in
  List.iter
    (fun addr ->
      (match Hashtbl.find_opt st.last_write addr with
      | Some w -> record st ~outer w m
      | None -> ());
      Hashtbl.replace st.last_read addr m)
    (read_addrs env s);
  List.iter
    (fun addr ->
      (match Hashtbl.find_opt st.last_write addr with
      | Some w -> record st ~outer w m
      | None -> ());
      (match Hashtbl.find_opt st.last_read addr with
      | Some r -> if r.m_sid <> s.Stmt.sid || r.m_task <> m.m_task then record st ~outer r m
      | None -> ());
      Hashtbl.replace st.last_write addr m)
    (write_addrs env s);
  s.Stmt.exec env

let run ?(max_events = 100_000) (p : Program.t) env =
  let st =
    {
      events = [];
      n_events = 0;
      max_events;
      pairs = Hashtbl.create 64;
      last_write = Hashtbl.create 4096;
      last_read = Hashtbl.create 4096;
      min_dist = None;
    }
  in
  let task = ref 0 in
  let inv = ref 0 in
  for t = 0 to p.Program.outer_trip - 1 do
    let env_t = Env.with_outer env t in
    List.iter
      (fun (il : Program.inner) ->
        List.iter
          (fun s ->
            visit st ~outer:t env_t s (fun sid ->
                { m_sid = sid; m_task = !task; m_inv = !inv; m_iter = -1; m_seq = true }))
          il.Program.pre;
        let trip = il.Program.trip env_t in
        for j = 0 to trip - 1 do
          let env_j = Env.with_inner env_t j in
          List.iter
            (fun s ->
              visit st ~outer:t env_j s (fun sid ->
                  { m_sid = sid; m_task = !task; m_inv = !inv; m_iter = j; m_seq = false }))
            il.Program.body;
          incr task
        done;
        incr inv)
      p.Program.inners
  done;
  {
    deps = List.rev st.events;
    pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.pairs [] |> List.sort compare;
    min_task_distance = st.min_dist;
    total_tasks = !task;
    total_invocations = !inv;
  }

let manifest_rate (result : result) (p : Program.t) ~src_sid ~dst_sid =
  match List.assoc_opt (src_sid, dst_sid) result.pairs with
  | None -> 0.
  | Some stat ->
      let distinct = List.sort_uniq compare stat.outer_iters in
      if p.Program.outer_trip <= 1 then 0.
      else float_of_int (List.length distinct) /. float_of_int (p.Program.outer_trip - 1)
