(** Rewrites a program so that every array index is loaded through an
    identity index array ("dynamically allocated arrays" in Figure 2.2 of
    the dissertation): the semantics and costs are unchanged, but every
    access becomes irregular to static analysis, reproducing the fragility
    of analysis-based parallelization. *)

val idmap : string
(** Name of the identity array the rewritten program loads through. *)

val wrap : Program.t -> Program.t

val extend_env : Env.t -> size:int -> Env.t
(** Fresh environment whose memory additionally holds the identity array
    (of [size] entries). *)
