(** Evaluation contexts for IR expressions and statements. *)

type t = {
  mem : Memory.t;
  params : (string * int) list;  (** runtime parameters (input sizes, seeds) *)
  t_outer : int;  (** outer-loop induction variable (invocation number) *)
  j_inner : int;  (** inner-loop induction variable (iteration number) *)
}

val make : ?params:(string * int) list -> Memory.t -> t
(** Context with both induction variables at 0. *)

val with_outer : t -> int -> t

val with_inner : t -> int -> t

val param : t -> string -> int
(** @raise Invalid_argument on unknown parameter. *)
