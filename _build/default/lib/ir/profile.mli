(** Runtime dependence profiler.

    Executes the region sequentially while observing every concrete memory
    access, and reports which statically-assumed dependences actually
    manifest, at what scope (within an invocation vs. across invocations),
    how often per outer iteration, and with what minimum task distance — the
    runtime information DOMORE's planner and SPECCROSS's profiling mode
    (dissertation §4.4, Table 5.3) are built on. *)

type scope = Within_invocation | Across_invocations

type dep = {
  src_sid : int;
  dst_sid : int;
  scope : scope;
  src_task : int;  (** global task number of the source access *)
  dst_task : int;
  involves_seq : bool;  (** one endpoint is a sequential (pre) statement *)
}

type pair_stat = { within : int; across : int; outer_iters : int list }

type result = {
  deps : dep list;  (** every manifested dependence event, oldest first *)
  pairs : ((int * int) * pair_stat) list;  (** per (src_sid, dst_sid) summary *)
  min_task_distance : int option;
      (** minimum [dst_task - src_task] over cross-invocation body-to-body
          dependences; [None] when no such dependence manifested *)
  total_tasks : int;
  total_invocations : int;
}

val run : ?max_events:int -> Program.t -> Env.t -> result
(** Profiles a fresh sequential execution (mutates the environment's memory).
    At most [max_events] dependence events are retained in [deps] (summaries
    remain exact). *)

val manifest_rate : result -> Program.t -> src_sid:int -> dst_sid:int -> float
(** Fraction of outer iterations (beyond the first) in which the pair's
    cross-invocation dependence manifested — e.g. 0.724 for CG's update
    dependence in Figure 3.1. *)
