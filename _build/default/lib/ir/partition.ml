type side = Scheduler | Worker

type t = { assign : (int * side) list; moved : int list }

let initial_side (l : Pdg.loc) = if l.Pdg.in_body then Worker else Scheduler

let compute (_p : Program.t) (pdg : Pdg.t) =
  let graph, sids = Pdg.to_graph pdg in
  let comps, comp_edges = Scc.condense graph in
  let comps = Array.of_list comps in
  let ncomps = Array.length comps in
  (* Initial side per component: scheduler if it contains any sequential
     statement (rule 1 subsumes the initial partition). *)
  let side = Array.make ncomps Worker in
  Array.iteri
    (fun ci nodes ->
      if
        List.exists
          (fun v -> initial_side (Pdg.loc_of pdg sids.(v)) = Scheduler)
          nodes
      then side.(ci) <- Scheduler)
    comps;
  (* Rule 2: a worker component with an edge into a scheduler component gets
     re-partitioned to the scheduler; iterate to fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (src, dst) ->
        if side.(src) = Worker && side.(dst) = Scheduler then begin
          side.(src) <- Scheduler;
          changed := true
        end)
      comp_edges
  done;
  let assign = ref [] and moved = ref [] in
  Array.iteri
    (fun ci nodes ->
      List.iter
        (fun v ->
          let sid = sids.(v) in
          assign := (sid, side.(ci)) :: !assign;
          if side.(ci) = Scheduler && initial_side (Pdg.loc_of pdg sid) = Worker then
            moved := sid :: !moved)
        nodes)
    comps;
  { assign = List.rev !assign; moved = List.rev !moved }

let side_of t sid =
  match List.assoc_opt sid t.assign with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Partition.side_of: unknown sid %d" sid)

let stmts_on side t (pdg : Pdg.t) =
  List.filter_map
    (fun (s, _) -> if side_of t s.Stmt.sid = side then Some s else None)
    pdg.Pdg.stmts

let scheduler_stmts t pdg = stmts_on Scheduler t pdg

let worker_stmts t pdg = stmts_on Worker t pdg

let pipeline_ok t (pdg : Pdg.t) =
  List.for_all
    (fun (e : Pdg.edge) ->
      not (side_of t e.Pdg.src = Worker && side_of t e.Pdg.dst = Scheduler))
    pdg.Pdg.edges

let pp ppf t =
  Format.fprintf ppf "@[<v>partition:@,";
  List.iter
    (fun (sid, s) ->
      Format.fprintf ppf "  #%d -> %s@," sid
        (match s with Scheduler -> "scheduler" | Worker -> "worker"))
    t.assign;
  Format.fprintf ppf "@]"
