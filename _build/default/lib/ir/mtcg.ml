type plan = {
  program : Program.t;
  partition : Partition.t;
  pdg : Pdg.t;
  slice : Slice.t;
  slices : (string * Slice.t) list;
  scheduler_extra : Stmt.t list;
  guard_ratio : float;
}

type verdict = Plan of plan | Inapplicable of string

(* The scheduler runs ahead of the workers, so a sequential-region write that
   a worker later reads must land in a distinct location per outer iteration
   (otherwise the real DOMORE would forward the value over the queue, which
   this model does not implement). *)
let forwarding_hazard (p : Program.t) (part : Partition.t) (pdg : Pdg.t) =
  let pre = Partition.scheduler_stmts part pdg in
  let bodies = Partition.worker_stmts part pdg in
  ignore p;
  List.exists
    (fun (s : Stmt.t) ->
      List.exists
        (fun (w : Access.t) ->
          List.exists
            (fun (b : Stmt.t) ->
              List.exists (fun a -> Access.may_conflict w a) (Stmt.accesses b))
            bodies
          &&
          match Affine.of_expr w.Access.index with
          | Some f -> f.Affine.co = 0
          | None -> true)
        s.Stmt.writes)
    pre

let generate ?(guard_threshold = 0.9) (p : Program.t) env =
  let pdg = Pdg.build p in
  let partition = Partition.compute p pdg in
  assert (Partition.pipeline_ok partition pdg);
  if forwarding_hazard p partition pdg then
    Inapplicable "scheduler-to-worker value forwarding not representable"
  else
  match Slice.compute_addr p partition pdg with
  | Slice.Inapplicable reason -> Inapplicable reason
  | Slice.Sliceable slice ->
      let ratio = Slice.guard_ratio slice p env in
      if ratio > guard_threshold then
        Inapplicable
          (Printf.sprintf
             "performance guard: computeAddr costs %.0f%% of a worker iteration" (100. *. ratio))
      else
        let scheduler_extra =
          List.filter
            (fun s -> List.mem s.Stmt.sid partition.Partition.moved)
            (Program.body_stmts p)
        in
        let slices =
          List.map
            (fun (il : Program.inner) ->
              let workers =
                List.filter
                  (fun (s : Stmt.t) ->
                    Partition.side_of partition s.Stmt.sid = Partition.Worker)
                  il.Program.body
              in
              (il.Program.ilabel, Slice.of_stmts workers))
            p.Program.inners
        in
        Plan
          { program = p; partition; pdg; slice; slices; scheduler_extra; guard_ratio = ratio }

let slice_for plan label =
  match List.assoc_opt label plan.slices with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Mtcg.slice_for: unknown inner %s" label)

let render plan =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "void scheduler() {\n";
  pf "  iternum = 0;\n";
  pf "  for (t = 0; t < %d; t++) {\n" plan.program.Program.outer_trip;
  List.iter
    (fun (il : Program.inner) ->
      List.iter
        (fun s ->
          if Partition.side_of plan.partition s.Stmt.sid = Partition.Scheduler then
            pf "    %s;                     /* sequential region */\n" s.Stmt.name)
        il.Program.pre;
      pf "    for (j = 0; j < trip_%s(t); j++) {\n" il.Program.ilabel;
      List.iter
        (fun (a : Access.t) ->
          pf "      addr_set += &%s[%s];   /* computeAddr */\n" a.Access.base
            (Expr.to_string a.Access.index))
        plan.slice.Slice.accesses;
      pf "      tid = schedule(iternum, addr_set);\n";
      pf "      schedulerSync(iternum, tid, queue[tid], addr_set);\n";
      pf "      produce(queue[tid], iteration j of %s);\n" il.Program.ilabel;
      pf "      iternum++;\n";
      pf "    }\n")
    plan.program.Program.inners;
  pf "  }\n";
  pf "  produce_to_all(END_TOKEN);\n";
  pf "}\n\n";
  pf "void worker() {\n";
  pf "  while (1) {\n";
  pf "    cond = consume();\n";
  pf "    if (cond == END_TOKEN) return;\n";
  pf "    while (cond != NO_SYNC) {\n";
  pf "      wait(latestFinished[cond.tid] >= cond.iter);   /* workerSync */\n";
  pf "      cond = consume();\n";
  pf "    }\n";
  List.iter
    (fun s ->
      if Partition.side_of plan.partition s.Stmt.sid = Partition.Worker then
        pf "    %s;                       /* doWork */\n" s.Stmt.name)
    (Program.body_stmts plan.program);
  pf "    latestFinished[self] = cond.iter;\n";
  pf "  }\n";
  pf "}\n";
  Buffer.contents b
