type violation = {
  stmt : string;
  write : bool;
  arr : string;
  idx : int;
  t_outer : int;
  j_inner : int;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s: undeclared %s of %s[%d] at (t=%d, j=%d)" v.stmt
    (if v.write then "write" else "read")
    v.arr v.idx v.t_outer v.j_inner

(* The declared footprint of a statement in a context, as (arr, idx) pairs.
   Reads include index-array loads; evaluating the declaration itself also
   reads memory, so evaluation happens before the observer is installed. *)
let declared env (s : Stmt.t) =
  let of_access (a : Access.t) =
    (a.Access.base, Expr.eval env a.Access.index)
  in
  let idx_loads =
    List.concat_map
      (fun (a : Access.t) ->
        List.map (fun (arr, ix) -> (arr, Expr.eval env ix)) (Expr.loads a.Access.index))
      (Stmt.accesses s)
  in
  let reads = List.map of_access s.Stmt.reads @ idx_loads in
  let writes = List.map of_access s.Stmt.writes in
  (reads, writes)

let stmt env (s : Stmt.t) =
  let reads, writes = declared env s in
  let out = ref [] in
  let observer ~write arr idx =
    let ok = if write then List.mem (arr, idx) writes else List.mem (arr, idx) reads in
    if not ok then
      out :=
        {
          stmt = s.Stmt.name;
          write;
          arr;
          idx;
          t_outer = env.Env.t_outer;
          j_inner = env.Env.j_inner;
        }
        :: !out
  in
  Memory.set_observer (Some observer) env.Env.mem;
  Fun.protect
    ~finally:(fun () -> Memory.set_observer None env.Env.mem)
    (fun () -> s.Stmt.exec env);
  List.rev !out

let program ?(max_outer = max_int) ?(max_inner = max_int) (p : Program.t) env =
  let out = ref [] in
  for t = 0 to Stdlib.min max_outer p.Program.outer_trip - 1 do
    let env_t = Env.with_outer env t in
    List.iter
      (fun (il : Program.inner) ->
        List.iter (fun s -> out := stmt env_t s @ !out) il.Program.pre;
        let trip = il.Program.trip env_t in
        for j = 0 to Stdlib.min max_inner trip - 1 do
          let env_j = Env.with_inner env_t j in
          List.iter (fun s -> out := stmt env_j s @ !out) il.Program.body
        done)
      p.Program.inners
  done;
  List.rev !out
