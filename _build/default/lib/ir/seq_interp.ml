let exec_stmt env (s : Stmt.t) =
  let c = s.Stmt.cost env in
  s.Stmt.exec env;
  c

let run_invocation (il : Program.inner) env =
  let cost = ref 0. in
  List.iter (fun s -> cost := !cost +. exec_stmt env s) il.Program.pre;
  let trip = il.Program.trip env in
  for j = 0 to trip - 1 do
    let env_j = Env.with_inner env j in
    List.iter (fun s -> cost := !cost +. exec_stmt env_j s) il.Program.body
  done;
  !cost

let run (p : Program.t) env =
  let cost = ref 0. in
  for t = 0 to p.Program.outer_trip - 1 do
    let env_t = Env.with_outer env t in
    List.iter (fun il -> cost := !cost +. run_invocation il env_t) p.Program.inners
  done;
  !cost
