type graph = { nodes : int; succs : int -> int list }

(* Iterative Tarjan to avoid stack overflow on large graphs. *)
let tarjan g =
  let index = Array.make g.nodes (-1) in
  let lowlink = Array.make g.nodes 0 in
  let on_stack = Array.make g.nodes false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- Stdlib.min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- Stdlib.min lowlink.(v) index.(w))
      (g.succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> assert false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to g.nodes - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order when accumulated
     with [comps := c :: !comps] reversed; normalize to reverse-topological:
     the first component found is a sink. *)
  List.rev !comps

let condense g =
  let comps = tarjan g in
  let comp_of = Array.make g.nodes (-1) in
  List.iteri (fun ci vs -> List.iter (fun v -> comp_of.(v) <- ci) vs) comps;
  let edge_set = Hashtbl.create 16 in
  for v = 0 to g.nodes - 1 do
    List.iter
      (fun w ->
        let cv = comp_of.(v) and cw = comp_of.(w) in
        if cv <> cw then Hashtbl.replace edge_set (cv, cw) ())
      (g.succs v)
  done;
  (comps, Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] |> List.sort compare)

let topological g = List.rev (tarjan g)
