let reads env (s : Stmt.t) =
  let direct = List.map (fun a -> Access.addr env env.Env.mem a) s.Stmt.reads in
  let idx =
    List.concat_map
      (fun (a : Access.t) ->
        List.map
          (fun (arr, ix) -> Memory.addr env.Env.mem arr (Expr.eval env ix))
          (Expr.loads a.Access.index))
      (Stmt.accesses s)
  in
  direct @ idx

let writes env (s : Stmt.t) =
  List.map (fun a -> Access.addr env env.Env.mem a) s.Stmt.writes

let all env s = reads env s @ writes env s

let body env (il : Program.inner) = List.concat_map (all env) il.Program.body

let access_count (il : Program.inner) =
  List.fold_left
    (fun acc (s : Stmt.t) ->
      acc + List.length s.Stmt.reads + List.length s.Stmt.writes)
    0 il.Program.body

let body_filtered ~hot env (il : Program.inner) =
  List.concat_map
    (fun (s : Stmt.t) ->
      let direct =
        List.filter_map
          (fun (a : Access.t) ->
            if hot a.Access.base then Some (Access.addr env env.Env.mem a) else None)
          (Stmt.accesses s)
      in
      let idx =
        List.concat_map
          (fun (a : Access.t) ->
            List.filter_map
              (fun (arr, ix) ->
                if hot arr then Some (Memory.addr env.Env.mem arr (Expr.eval env ix))
                else None)
              (Expr.loads a.Access.index))
          (Stmt.accesses s)
      in
      direct @ idx)
    il.Program.body
