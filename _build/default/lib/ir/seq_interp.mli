(** Sequential reference interpreter.

    Executes the region in program order, mutating the environment's memory,
    and returns the accumulated virtual cost — the sequential baseline every
    speedup in the evaluation is measured against. *)

val run : Program.t -> Env.t -> float

val run_invocation : Program.inner -> Env.t -> float
(** One invocation (pre statements + all iterations) at the environment's
    current outer index. *)
