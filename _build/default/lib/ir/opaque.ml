let idmap = "idmap"

let wrap_access (a : Access.t) =
  { a with Access.index = Expr.Load (idmap, a.Access.index) }

let wrap_stmt (s : Stmt.t) =
  {
    s with
    Stmt.reads = List.map wrap_access s.Stmt.reads;
    writes = List.map wrap_access s.Stmt.writes;
  }

let wrap_inner (il : Program.inner) =
  { il with Program.body = List.map wrap_stmt il.Program.body }

let wrap (p : Program.t) =
  { p with Program.inners = List.map wrap_inner p.Program.inners }

let extend_env (env : Env.t) ~size =
  let specs = Memory.to_specs env.Env.mem in
  let mem = Memory.create (specs @ [ Memory.Ints (idmap, Array.init size (fun i -> i)) ]) in
  { env with Env.mem }
