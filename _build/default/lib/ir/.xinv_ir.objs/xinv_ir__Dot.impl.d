lib/ir/dot.ml: Array Buffer List Partition Pdg Printf Scc Stmt String
