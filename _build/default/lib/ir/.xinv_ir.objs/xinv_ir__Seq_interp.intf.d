lib/ir/seq_interp.mli: Env Program
