lib/ir/scc.mli:
