lib/ir/scc.ml: Array Hashtbl List Stdlib
