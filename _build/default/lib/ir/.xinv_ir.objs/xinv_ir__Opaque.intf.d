lib/ir/opaque.mli: Env Program
