lib/ir/validate.ml: Access Env Expr Format Fun List Memory Program Stdlib Stmt
