lib/ir/env.ml: List Memory Printf
