lib/ir/seq_interp.ml: Env List Program Stmt
