lib/ir/pdg.mli: Format Program Scc Stmt
