lib/ir/program.mli: Env Format Stmt
