lib/ir/program.ml: Env Format List Printf Stmt String
