lib/ir/pdg.ml: Access Array Expr Format Hashtbl List Printf Program Scc Stmt
