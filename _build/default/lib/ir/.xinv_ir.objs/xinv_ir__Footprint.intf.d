lib/ir/footprint.mli: Env Program Stmt
