lib/ir/memory.ml: Array Hashtbl List Printf
