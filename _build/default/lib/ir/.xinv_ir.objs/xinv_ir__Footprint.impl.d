lib/ir/footprint.ml: Access Env Expr List Memory Program Stmt
