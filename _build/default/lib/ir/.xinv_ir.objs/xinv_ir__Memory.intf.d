lib/ir/memory.mli:
