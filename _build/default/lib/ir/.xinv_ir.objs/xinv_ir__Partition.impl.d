lib/ir/partition.ml: Array Format List Pdg Printf Program Scc Stmt
