lib/ir/stmt.ml: Access Env Expr Format List String
