lib/ir/validate.mli: Env Format Program Stmt
