lib/ir/affine.ml: Expr Format
