lib/ir/access.mli: Affine Env Expr Format Memory
