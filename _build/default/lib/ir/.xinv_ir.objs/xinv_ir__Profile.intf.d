lib/ir/profile.mli: Env Program
