lib/ir/expr.ml: Env Format Memory Stdlib
