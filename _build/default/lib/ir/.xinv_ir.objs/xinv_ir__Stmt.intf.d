lib/ir/stmt.mli: Access Env Format
