lib/ir/access.ml: Affine Expr Format Memory String
