lib/ir/profile.ml: Access Env Expr Hashtbl List Memory Program Stmt
