lib/ir/mtcg.mli: Env Partition Pdg Program Slice Stmt
