lib/ir/mtcg.ml: Access Affine Buffer Expr List Partition Pdg Printf Program Slice Stmt
