lib/ir/slice.mli: Access Env Partition Pdg Program Stmt
