lib/ir/expr.mli: Env Format
