lib/ir/partition.mli: Format Pdg Program Stmt
