lib/ir/dot.mli: Partition Pdg
