lib/ir/opaque.ml: Access Array Env Expr List Memory Program Stmt
