lib/ir/slice.ml: Access Env Expr List Partition Pdg Printf Program Stdlib Stmt String Xinv_util
