lib/ir/env.mli: Memory
