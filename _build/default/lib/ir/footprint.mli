(** Concrete memory footprints of statements in a given iteration context —
    the addresses SPECCROSS's [spec_access] instrumentation feeds to the
    signature generator. *)

val reads : Env.t -> Stmt.t -> int list
(** Flat addresses read, including index-array loads. *)

val writes : Env.t -> Stmt.t -> int list

val all : Env.t -> Stmt.t -> int list

val body : Env.t -> Program.inner -> int list
(** Footprint of one whole inner-loop iteration. *)

val access_count : Program.inner -> int
(** Static count of instrumented accesses per iteration (cost model). *)

val body_filtered : hot:(string -> bool) -> Env.t -> Program.inner -> int list
(** Footprint restricted to arrays satisfying [hot] — the accesses SPECCROSS
    actually instruments (those that may alias across invocations). *)
