let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let edge_attrs (e : Pdg.edge) =
  let style =
    match e.Pdg.kind with
    | Pdg.Intra | Pdg.Flow -> "solid"
    | Pdg.Cross_iter -> "dashed"
    | Pdg.Cross_invoc -> "bold"
  in
  let label =
    match (e.Pdg.kind, e.Pdg.carried_outer) with
    | Pdg.Cross_iter, _ -> "cross-iter"
    | Pdg.Cross_invoc, true -> "cross-invoc (outer)"
    | Pdg.Cross_invoc, false -> "cross-invoc"
    | Pdg.Flow, _ -> "flow"
    | Pdg.Intra, _ -> ""
  in
  Printf.sprintf "style=%s, label=\"%s\"" style label

let pdg ?partition (t : Pdg.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph pdg {\n  rankdir=TB;\n";
  List.iter
    (fun ((s : Stmt.t), (l : Pdg.loc)) ->
      let shape =
        match partition with
        | Some part when Partition.side_of part s.Stmt.sid = Partition.Scheduler -> "box"
        | Some _ -> "ellipse"
        | None -> if l.Pdg.in_body then "ellipse" else "box"
      in
      Buffer.add_string b
        (Printf.sprintf "  n%d [shape=%s, label=\"%s\"];\n" s.Stmt.sid shape
           (escape s.Stmt.name)))
    t.Pdg.stmts;
  List.iter
    (fun (e : Pdg.edge) ->
      Buffer.add_string b
        (Printf.sprintf "  n%d -> n%d [%s];\n" e.Pdg.src e.Pdg.dst (edge_attrs e)))
    t.Pdg.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let dag_scc (t : Pdg.t) =
  let graph, sids = Pdg.to_graph t in
  let comps, edges = Scc.condense graph in
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph dagscc {\n  rankdir=TB;\n";
  List.iteri
    (fun ci nodes ->
      let names =
        List.map
          (fun v -> escape (Pdg.stmt_of t sids.(v)).Stmt.name)
          nodes
      in
      Buffer.add_string b
        (Printf.sprintf "  c%d [shape=box, label=\"{%s}\"];\n" ci
           (String.concat "; " names)))
    comps;
  List.iter
    (fun (src, dst) -> Buffer.add_string b (Printf.sprintf "  c%d -> c%d;\n" src dst))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
