type t = {
  mem : Memory.t;
  params : (string * int) list;
  t_outer : int;
  j_inner : int;
}

let make ?(params = []) mem = { mem; params; t_outer = 0; j_inner = 0 }

let with_outer env t = { env with t_outer = t }

let with_inner env j = { env with j_inner = j }

let param env name =
  match List.assoc_opt name env.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Env.param: unknown parameter %s" name)
