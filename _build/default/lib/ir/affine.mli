(** Affine normal form of index expressions: [ci*j + co*t + k].

    The static dependence tests (DOALL legality, cross-invocation overlap)
    only understand this form; anything else — index-array loads, runtime
    parameters, non-linear arithmetic — is treated conservatively as
    irregular, which is precisely the imprecision of static analysis the
    dissertation's runtime techniques exist to overcome. *)

type t = { ci : int;  (** coefficient of the inner induction variable *)
           co : int;  (** coefficient of the outer induction variable *)
           k : int  (** constant *) }

val of_expr : Expr.t -> t option
(** [None] when the expression is not affine in the induction variables. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val same_iteration_only : t -> t -> bool
(** For two accesses to the same array within the same invocation: true when
    indices can only coincide for equal inner iterations (no loop-carried
    overlap).  Requires equal [ci] and [co]; then overlap forces [k1 = k2]
    and the same [j]. *)

val overlaps_some_iteration : t -> t -> bool
(** Whether there exist (possibly different) iteration vectors making the two
    indices equal, assuming unbounded loops: the conservative cross-iteration
    / cross-invocation test. *)
