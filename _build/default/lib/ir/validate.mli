(** Dynamic validation that statement semantics respect their declared
    footprints.

    Every compiler decision in this library — dependence edges, partitions,
    slices, signatures — is derived from the statements' declared [reads]
    and [writes].  This module executes statements under a memory observer
    and reports any access outside the declaration, so a workload whose
    [exec] closure disagrees with its static footprint is caught by tests
    instead of corrupting an experiment. *)

type violation = {
  stmt : string;  (** statement name *)
  write : bool;
  arr : string;
  idx : int;
  t_outer : int;
  j_inner : int;
}

val pp_violation : Format.formatter -> violation -> unit

val stmt : Env.t -> Stmt.t -> violation list
(** Execute one statement in the given context and report undeclared
    accesses (the declared footprint is evaluated in the same context). *)

val program : ?max_outer:int -> ?max_inner:int -> Program.t -> Env.t -> violation list
(** Walk the region in program order (like the sequential interpreter),
    validating every statement execution; optionally bound the outer/inner
    iterations visited.  Mutates the environment's memory. *)
