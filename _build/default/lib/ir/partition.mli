(** DOMORE scheduler/worker partitioning (dissertation §3.3.1).

    The sequential (pre) statements and loop traversal go to the scheduler,
    inner-loop bodies to the workers; DAG-SCC fix-ups then (1) pull every SCC
    containing a scheduler statement entirely into the scheduler and (2)
    repeatedly move worker SCCs that have an edge back into the scheduler
    partition, until the scheduler-to-worker pipeline is acyclic. *)

type side = Scheduler | Worker

type t = {
  assign : (int * side) list;  (** statement id to partition side *)
  moved : int list;  (** body statements forced into the scheduler *)
}

val compute : Program.t -> Pdg.t -> t

val side_of : t -> int -> side

val scheduler_stmts : t -> Pdg.t -> Stmt.t list

val worker_stmts : t -> Pdg.t -> Stmt.t list

val pipeline_ok : t -> Pdg.t -> bool
(** No dependence flows from a worker statement to a scheduler statement
    (holds for every partition {!compute} returns; worker-to-worker
    dependences are the runtime engine's job). *)

val pp : Format.formatter -> t -> unit
