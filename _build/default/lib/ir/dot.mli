(** Graphviz export of the compiler's graph artifacts, for inspection of the
    dependence structure behind a parallelization decision. *)

val pdg : ?partition:Partition.t -> Pdg.t -> string
(** DOT source for a program dependence graph; when a partition is given,
    scheduler statements are drawn as boxes and workers as ellipses.  Edge
    styles encode the dependence kind (solid: intra-iteration / flow,
    dashed: cross-iteration, bold: cross-invocation; outer-carried edges are
    annotated). *)

val dag_scc : Pdg.t -> string
(** DOT source for the condensation into strongly connected components (the
    DAG-SCC the DOMORE partitioner works on). *)
