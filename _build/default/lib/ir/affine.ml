type t = { ci : int; co : int; k : int }

let rec of_expr : Expr.t -> t option = function
  | Expr.Const k -> Some { ci = 0; co = 0; k }
  | Expr.Ivar -> Some { ci = 1; co = 0; k = 0 }
  | Expr.Ovar -> Some { ci = 0; co = 1; k = 0 }
  | Expr.Param _ | Expr.Load _ -> None
  | Expr.Bin (op, x, y) -> (
      match (of_expr x, of_expr y) with
      | Some a, Some b -> (
          match op with
          | Expr.Add -> Some { ci = a.ci + b.ci; co = a.co + b.co; k = a.k + b.k }
          | Expr.Sub -> Some { ci = a.ci - b.ci; co = a.co - b.co; k = a.k - b.k }
          | Expr.Mul when a.ci = 0 && a.co = 0 ->
              Some { ci = a.k * b.ci; co = a.k * b.co; k = a.k * b.k }
          | Expr.Mul when b.ci = 0 && b.co = 0 ->
              Some { ci = b.k * a.ci; co = b.k * a.co; k = b.k * a.k }
          | _ -> None)
      | _ -> None)

let equal a b = a.ci = b.ci && a.co = b.co && a.k = b.k

let pp ppf a = Format.fprintf ppf "%d*j + %d*t + %d" a.ci a.co a.k

let same_iteration_only a b = a.ci = b.ci && a.ci <> 0 && a.co = b.co && a.k = b.k

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let overlaps_some_iteration a b =
  let g = gcd (gcd a.ci a.co) (gcd b.ci b.co) in
  let d = b.k - a.k in
  if g = 0 then d = 0 else d mod g = 0
