(** Strongly connected components (Tarjan) and the condensed DAG.

    Operates on integer graphs; the PDG maps statement ids onto dense node
    indices before calling in. *)

type graph = { nodes : int; succs : int -> int list }

val tarjan : graph -> int list list
(** SCCs in reverse topological order of the condensation (every edge goes
    from a later to an earlier component in the returned list). *)

val condense : graph -> int list list * (int * int) list
(** [(comps, edges)] where [comps] is as {!tarjan} and [edges] are the
    inter-component edges [(src_comp, dst_comp)] (deduplicated), indices into
    [comps]. *)

val topological : graph -> int list list
(** SCCs in topological order (sources first). *)
