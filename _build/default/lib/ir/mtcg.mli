(** Multi-threaded code generation (dissertation §3.3.2, Algorithm 4).

    Produces the DOMORE execution plan from a partition: what the scheduler
    thread runs per outer iteration, what a worker runs per dispatched
    iteration, which values flow over the queues, and the generated
    [computeAddr] slice.  Also renders the generated functions as pseudo-code
    in the style of Figure 3.7 for inspection and tests. *)

type plan = {
  program : Program.t;
  partition : Partition.t;
  pdg : Pdg.t;
  slice : Slice.t;  (** region-wide slice (taint check, guard, reporting) *)
  slices : (string * Slice.t) list;
      (** per-inner-loop slices, keyed by label: what the scheduler actually
          evaluates for one iteration of that loop *)
  scheduler_extra : Stmt.t list;  (** body statements re-partitioned to the scheduler *)
  guard_ratio : float;  (** scheduler/worker cost ratio (Table 5.2) *)
}

type verdict = Plan of plan | Inapplicable of string

val generate : ?guard_threshold:float -> Program.t -> Env.t -> verdict
(** Runs the full DOMORE compile-time pipeline: PDG, partition, slice,
    performance guard.  [guard_threshold] (default 0.9) rejects plans whose
    scheduler would be as expensive as the workers. *)

val slice_for : plan -> string -> Slice.t
(** Per-inner slice by label.  @raise Invalid_argument on unknown label. *)

val render : plan -> string
(** Pseudo-code of the generated scheduler and worker functions. *)
