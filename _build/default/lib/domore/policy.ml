type t = Round_robin | Mem_partition | Least_loaded

let name = function
  | Round_robin -> "round-robin"
  | Mem_partition -> "memory-partition"
  | Least_loaded -> "least-loaded"

let pick t ~loads ~mem ~threads ~iter ~write_addrs =
  assert (threads > 0);
  match t with
  | Round_robin -> iter mod threads
  | Mem_partition -> (
      match write_addrs with
      | [] -> iter mod threads
      | addr :: _ ->
          let arr, idx = Xinv_ir.Memory.locate mem addr in
          idx * threads / Xinv_ir.Memory.size mem arr)
  | Least_loaded -> (
      match loads with
      | None -> iter mod threads
      | Some ls ->
          let best = ref (iter mod threads) in
          for w = 0 to threads - 1 do
            if ls.(w) < ls.(!best) then best := w
          done;
          !best)
