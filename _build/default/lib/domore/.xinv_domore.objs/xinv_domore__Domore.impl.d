lib/domore/domore.ml: Array List Policy Printf Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim
