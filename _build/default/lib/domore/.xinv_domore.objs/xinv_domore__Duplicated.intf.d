lib/domore/duplicated.mli: Domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim
