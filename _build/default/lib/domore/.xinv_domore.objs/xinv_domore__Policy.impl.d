lib/domore/policy.ml: Array Xinv_ir
