lib/domore/policy.mli: Xinv_ir
