lib/domore/duplicated.ml: Array Domore List Policy Printf Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim
