lib/domore/domore.mli: Policy Xinv_ir Xinv_parallel Xinv_sim
