(** Iteration scheduling policies for the DOMORE scheduler (dissertation
    §3.3.3): round-robin, and LOCALWRITE-style memory partitioning where an
    iteration goes to the owner of the memory it writes. *)

type t =
  | Round_robin
  | Mem_partition  (** owner of the first predicted write address *)
  | Least_loaded
      (** worker with the shortest dispatch queue (the "smarter scheduling"
          extension §3.3.3 anticipates); callers supply queue lengths *)

val name : t -> string

val pick :
  t ->
  loads:int array option ->
  mem:Xinv_ir.Memory.t ->
  threads:int ->
  iter:int ->
  write_addrs:int list ->
  int
(** Worker thread for a combined iteration number given the slice-predicted
    write addresses.  Memory partitioning owns contiguous blocks of the
    written array (as LOCALWRITE does), not of the flat address space. *)
