let cache = ref None

let all () =
  match !cache with
  | Some ws -> ws
  | None ->
      let ws =
        [
          Fdtd.make ();
          Jacobi.make ();
          Symm.make ();
          Loopdep.make ();
          Blackscholes.make ();
          Fluidanimate.make1 ();
          Fluidanimate.make2 ();
          Equake.make ();
          Llubench.make ();
          Cg.make ();
          Eclat.make ();
        ]
      in
      cache := Some ws;
      ws

let find name =
  let target = String.uppercase_ascii name in
  match
    List.find_opt
      (fun (w : Workload.t) -> String.uppercase_ascii w.Workload.name = target)
      (all ())
  with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Registry.find: unknown workload %s" name)

let names () = List.map (fun (w : Workload.t) -> w.Workload.name) (all ())

let domore_set () =
  List.map find
    [ "BLACKSCHOLES"; "CG"; "ECLAT"; "FLUIDANIMATE-1"; "LLUBENCH"; "SYMM" ]

let speccross_set () =
  List.map find
    [ "CG"; "EQUAKE"; "FDTD"; "FLUIDANIMATE-2"; "JACOBI"; "LLUBENCH"; "LOOPDEP"; "SYMM" ]
