(** All benchmark workloads (the rows of Table 5.1). *)

val all : unit -> Workload.t list

val find : string -> Workload.t
(** Case-insensitive lookup.  @raise Invalid_argument on unknown name. *)

val names : unit -> string list

val domore_set : unit -> Workload.t list
(** The six DOMORE-evaluated benchmarks (Figure 5.1). *)

val speccross_set : unit -> Workload.t list
(** The eight SPECCROSS-evaluated benchmarks (Figure 5.2). *)
