module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* SpecFP EQUAKE main time-stepping loop: each timestep performs a sparse
   matrix-vector product whose reads go through a column index array the
   compiler cannot analyze, writing a per-timestep result slice.  No
   cross-invocation dependence ever manifests (Table 5.3 reports "*"), but
   static analysis must assume them; a displacement probe in the sequential
   region blocks the DOMORE partition (Table 5.1: DOMORE x). *)

let trip = 22

let outer_of = function Workload.Train | Workload.Train_spec -> 90 | _ -> 300

let build_input input =
  let n = outer_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 5 | _ -> 61 in
  let rng = Xinv_util.Prng.create ~seed in
  let stiff = Array.init 512 (fun i -> float_of_int ((i * 19) mod 761)) in
  let colv = Array.init trip (fun _ -> Xinv_util.Prng.int rng 512) in
  let wave = Array.make (n * trip) 0. in
  Ir.Memory.create
    [
      Ir.Memory.Floats ("stiff", stiff);
      Ir.Memory.Ints ("colV", colv);
      Ir.Memory.Floats ("wave", wave);
    ]

let out = E.((o * c trip) + i)

let stiff_at = E.ld "colV" E.i

let build_program outer =
  let smvp =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "stiff" stiff_at ]
      ~writes:[ Ir.Access.make "wave" out ]
      ~cost:(fun env -> Wl_util.jittered ~base:1300. ~spread:0.55 ~salt:41 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let k = Ir.Memory.get_float mem "stiff" (E.eval env stiff_at) in
        Ir.Memory.set_float mem "wave" (E.eval env out)
          (Float.rem (k +. float_of_int env.Ir.Env.t_outer) Wl_util.modulus))
      "w[Anext] = K[col[j]]*v"
  in
  let probe =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "wave" E.(Bin (Mod, o * c trip, c 660)) ]
      ~cost:(Ir.Stmt.fixed_cost 150.)
      "disp_probe"
  in
  Ir.Program.make ~name:"EQUAKE" ~outer_trip:outer
    [ Ir.Program.inner ~pre:[ probe ] ~label:"smvp" ~trip:(Ir.Program.const_trip trip) [ smvp ] ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let n = outer_of input in
    match Hashtbl.find_opt progs n with
    | Some p -> p
    | None ->
        let p = build_program n in
        Hashtbl.replace progs n p;
        p
  in
  {
    Workload.name = "EQUAKE";
    suite = "SpecFP";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan = [ ("smvp", Xinv_parallel.Intra.Doall) ];
    mem_partition = false;
    domore_expected = false;
    speccross_expected = true;
  }
