(** PARSEC FLUIDANIMATE (dissertation §5.4 case study). *)

val make1 : unit -> Workload.t
(** FLUIDANIMATE-1: the ComputeForce loop nest alone — the standard DOMORE
    target with a heavy [computeAddr] slice. *)

val make2 : unit -> Workload.t
(** FLUIDANIMATE-2: the whole eight-invocation frame loop of Figure 5.5;
    classic DOMORE is blocked by the worker-written grid index array, and
    Figure 5.6's configurations compose within-epoch DOMORE with
    speculative barriers. *)
