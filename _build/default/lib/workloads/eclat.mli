(** MineBench ECLAT ([process_inverti]): vertical-database inversion whose
    consecutive graph nodes conflict almost every invocation — the frequent-
    conflict DOMORE case with the heaviest scheduler slice (Table 5.2). *)

val make : unit -> Workload.t
