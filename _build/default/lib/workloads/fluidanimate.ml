module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* PARSEC FLUIDANIMATE.

   [make2] is the whole-application region (Figure 5.5): eight invocations
   per frame.  RebuildGrid writes the cell index array that the density and
   force loops read through, so classic DOMORE cannot slice ahead of the
   workers (Table 5.1: DOMORE x); the two irregular-update loops use
   LOCALWRITE (or, in Figure 5.6, within-epoch duplicated DOMORE) and the
   remaining six are DOALL.

   [make1] is the ComputeForce loop nest alone (50.2% of execution), with a
   static neighbour structure: the standard DOMORE target, with a heavy
   computeAddr slice (the 21.5% scheduler/worker ratio of Table 5.2). *)

let neighbours = 4

(* ---------- FLUIDANIMATE-1: ComputeForce nest ---------- *)

let p1_of = function Workload.Train | Workload.Train_spec -> 80 | _ -> 150

let frames1_of = function Workload.Train | Workload.Train_spec -> 25 | _ -> 80

let build_input1 input =
  let p = p1_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 17 | _ -> 67 in
  let rng = Xinv_util.Prng.create ~seed in
  let neigh =
    (* Neighbours sit within a small forward window of the particle: keeps
       the cross-invocation dependence distance near one invocation (the
       profiled minimum the paper reports), never at zero. *)
    Array.init (p * neighbours) (fun k ->
        let j = k / neighbours in
        Stdlib.min (j + 1 + Xinv_util.Prng.int rng 16) (p - 1))
  in
  let pos = Array.init p (fun j -> float_of_int ((j * 53) mod 4099)) in
  let force = Array.make p 0. in
  Ir.Memory.create
    [
      Ir.Memory.Ints ("neigh", neigh);
      Ir.Memory.Floats ("pos", pos);
      Ir.Memory.Floats ("force", force);
    ]

let n_at k = E.ld "neigh" E.((i * c neighbours) + c k)

let build_program1 input =
  let traverse =
    Ir.Stmt.make
      ~reads:
        (Ir.Access.make "pos" E.i
        :: List.init neighbours (fun k -> Ir.Access.make "pos" (n_at k)))
      ~cost:(fun env -> Wl_util.jittered ~base:700. ~spread:0.4 ~salt:53 env)
      "fk = kernel(p, neighbours(p))"
  in
  let own_update =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "force" E.i ]
      ~writes:[ Ir.Access.make "force" E.i ]
      ~cost:(fun env -> Wl_util.jittered ~base:500. ~spread:0.3 ~salt:59 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        let k = Ir.Memory.get_float mem "pos" j in
        Ir.Memory.set_float mem "force" j
          (Wl_util.mix (Ir.Memory.get_float mem "force" j) k))
      "force[p] += fk"
  in
  let neigh_update =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "force" (n_at 0) ]
      ~writes:[ Ir.Access.make "force" (n_at 0) ]
      ~cost:(fun env -> Wl_util.jittered ~base:500. ~spread:0.3 ~salt:61 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let q = E.eval env (n_at 0) in
        let k = Ir.Memory.get_float mem "pos" env.Ir.Env.j_inner in
        Ir.Memory.set_float mem "force" q
          (Wl_util.mix (Ir.Memory.get_float mem "force" q) (k +. 1.)))
      "force[q] -= fk"
  in
  Ir.Program.make ~name:"FLUIDANIMATE-1" ~outer_trip:(frames1_of input)
    [
      Ir.Program.inner ~label:"ComputeForce"
        ~trip:(Ir.Program.const_trip (p1_of input))
        [ traverse; own_update; neigh_update ];
    ]

let make1 () =
  let progs = Hashtbl.create 3 in
  let program input =
    let key = (p1_of input, frames1_of input) in
    match Hashtbl.find_opt progs key with
    | Some p -> p
    | None ->
        let p = build_program1 input in
        Hashtbl.replace progs key p;
        p
  in
  {
    Workload.name = "FLUIDANIMATE-1";
    suite = "PARSEC";
    func = "ComputeForce";
    exec_pct = 50.2;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input1 input));
    plan = [ ("ComputeForce", Xinv_parallel.Intra.Localwrite) ];
    mem_partition = true;
    domore_expected = true;
    speccross_expected = false;
  }

(* ---------- FLUIDANIMATE-2: whole application ---------- *)

let p2_of = function Workload.Train | Workload.Train_spec -> 64 | _ -> 120

let frames2_of = function Workload.Train | Workload.Train_spec -> 8 | _ -> 19

let cells = 32

let build_input2 input =
  let p = p2_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 23 | _ -> 71 in
  let rng = Xinv_util.Prng.create ~seed in
  let neigh =
    (* Neighbours sit within a small forward window of the particle: keeps
       the cross-invocation dependence distance near one invocation (the
       profiled minimum the paper reports), never at zero. *)
    Array.init (p * neighbours) (fun k ->
        let j = k / neighbours in
        Stdlib.min (j + 1 + Xinv_util.Prng.int rng 16) (p - 1))
  in
  let pos = Array.init p (fun j -> float_of_int ((j * 97) mod 65536)) in
  Ir.Memory.create
    [
      Ir.Memory.Ints ("neigh", neigh);
      Ir.Memory.Ints ("cellof", Array.make p 0);
      Ir.Memory.Floats ("pos", pos);
      Ir.Memory.Floats ("vel", Array.make p 0.);
      Ir.Memory.Floats ("dens", Array.make p 0.);
      Ir.Memory.Floats ("force", Array.make p 0.);
    ]

let simple ?(commutes = false) ~label ~base ~salt ~reads ~writes exec =
  Ir.Stmt.make ~reads ~writes ~commutes
    ~cost:(fun env -> Wl_util.jittered ~base ~spread:0.4 ~salt env)
    ~exec label

let build_program2 input =
  let p = p2_of input in
  let memf = Ir.Memory.get_float and setf = Ir.Memory.set_float in
  let clear =
    simple ~label:"dens[p]=0" ~base:900. ~salt:101 ~reads:[]
      ~writes:[ Ir.Access.make "dens" E.i ]
      (fun env -> setf env.Ir.Env.mem "dens" env.Ir.Env.j_inner 0.)
  in
  let rebuild =
    simple ~label:"cellof[p]=grid(pos)" ~base:400. ~salt:103
      ~reads:[ Ir.Access.make "pos" E.i ]
      ~writes:[ Ir.Access.make "cellof" E.i ]
      (fun env ->
        let j = env.Ir.Env.j_inner in
        let c = int_of_float (memf env.Ir.Env.mem "pos" j) mod cells in
        Ir.Memory.set_int env.Ir.Env.mem "cellof" j (abs c))
  in
  let initf =
    simple ~label:"force[p]=0" ~base:250. ~salt:107 ~reads:[]
      ~writes:[ Ir.Access.make "force" E.i ]
      (fun env -> setf env.Ir.Env.mem "force" env.Ir.Env.j_inner 0.)
  in
  (* Density/force contributions land on one of the particle's neighbours;
     the grid cell (an index array rewritten every frame) selects which
     slot, so the access is doubly irregular and the scheduler slice would
     need worker-written state.  Targets stay within the forward neighbour
     window, keeping the dependence distance near one invocation. *)
  let via_cell =
    E.ld "neigh" E.((i * c neighbours) + Bin (Mod, ld "cellof" i, c neighbours))
  in
  let gather1 =
    (* Neighbour-gathering traversal: no writes, so LOCALWRITE repeats it on
       every thread — the redundancy that limits LOCALWRITE in §5.4. *)
    simple ~label:"gather(p)" ~base:450. ~salt:108
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "pos" via_cell ]
      ~writes:[]
      (fun _ -> ())
  in
  let dens1 =
    (* Integer-valued accumulation: exact and commutative, so DOANY's
       lock-ordered execution matches sequential bit-for-bit. *)
    simple ~commutes:true ~label:"dens[q]+=w(p,q)" ~base:450. ~salt:109
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "dens" via_cell ]
      ~writes:[ Ir.Access.make "dens" via_cell ]
      (fun env ->
        let mem = env.Ir.Env.mem in
        let q = E.eval env via_cell in
        let k = memf mem "pos" env.Ir.Env.j_inner in
        setf mem "dens" q (memf mem "dens" q +. k))
  in
  let dens2 =
    simple ~label:"dens[p]=h(dens[p])" ~base:350. ~salt:113
      ~reads:[ Ir.Access.make "dens" E.i ]
      ~writes:[ Ir.Access.make "dens" E.i ]
      (fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        setf mem "dens" j (Float.rem (memf mem "dens" j +. 2.) Wl_util.modulus))
  in
  let gather2 =
    simple ~label:"kernel(p)" ~base:550. ~salt:126
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "dens" E.i ]
      ~writes:[]
      (fun _ -> ())
  in
  let force1 =
    simple ~commutes:true ~label:"force[q]+=f(p,q)" ~base:550. ~salt:127
      ~reads:
        [
          Ir.Access.make "pos" E.i;
          Ir.Access.make "dens" E.i;
          Ir.Access.make "force" via_cell;
        ]
      ~writes:[ Ir.Access.make "force" via_cell ]
      (fun env ->
        let mem = env.Ir.Env.mem in
        let q = E.eval env via_cell in
        let k = memf mem "dens" env.Ir.Env.j_inner in
        setf mem "force" q (memf mem "force" q +. k +. 3.))
  in
  let collide =
    simple ~label:"vel[p]=c(vel,force)" ~base:400. ~salt:131
      ~reads:[ Ir.Access.make "vel" E.i; Ir.Access.make "force" E.i ]
      ~writes:[ Ir.Access.make "vel" E.i ]
      (fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        setf mem "vel" j (Wl_util.mix (memf mem "vel" j) (memf mem "force" j)))
  in
  let advance =
    simple ~label:"pos[p]+=vel[p]" ~base:450. ~salt:137
      ~reads:[ Ir.Access.make "pos" E.i; Ir.Access.make "vel" E.i ]
      ~writes:[ Ir.Access.make "pos" E.i ]
      (fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        setf mem "pos" j (Wl_util.mix (memf mem "pos" j) (memf mem "vel" j)))
  in
  let loop label stmt =
    Ir.Program.inner ~label ~trip:(Ir.Program.const_trip p) [ stmt ]
  in
  Ir.Program.make ~name:"FLUIDANIMATE-2" ~outer_trip:(frames2_of input)
    [
      loop "ClearParticles" clear;
      loop "RebuildGrid" rebuild;
      loop "InitDensitiesAndForces" initf;
      Ir.Program.inner ~label:"ComputeDensities" ~trip:(Ir.Program.const_trip p)
        [ gather1; dens1 ];
      loop "ComputeDensities2" dens2;
      Ir.Program.inner ~label:"ComputeForces" ~trip:(Ir.Program.const_trip p)
        [ gather2; force1 ];
      loop "ProcessCollisions" collide;
      loop "AdvanceParticles" advance;
    ]

let plan2 =
  [
    ("ClearParticles", Xinv_parallel.Intra.Doall);
    ("RebuildGrid", Xinv_parallel.Intra.Doall);
    ("InitDensitiesAndForces", Xinv_parallel.Intra.Doall);
    ("ComputeDensities", Xinv_parallel.Intra.Localwrite);
    ("ComputeDensities2", Xinv_parallel.Intra.Doall);
    ("ComputeForces", Xinv_parallel.Intra.Localwrite);
    ("ProcessCollisions", Xinv_parallel.Intra.Doall);
    ("AdvanceParticles", Xinv_parallel.Intra.Doall);
  ]

let make2 () =
  let progs = Hashtbl.create 3 in
  let program input =
    let key = (p2_of input, frames2_of input) in
    match Hashtbl.find_opt progs key with
    | Some p -> p
    | None ->
        let p = build_program2 input in
        Hashtbl.replace progs key p;
        p
  in
  {
    Workload.name = "FLUIDANIMATE-2";
    suite = "PARSEC";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input2 input));
    plan = plan2;
    mem_partition = true;
    domore_expected = false;
    speccross_expected = true;
  }
