type input = Train | Train_spec | Ref | Ref_spec

type t = {
  name : string;
  suite : string;
  func : string;
  exec_pct : float;
  program : input -> Xinv_ir.Program.t;
  fresh_env : input -> Xinv_ir.Env.t;
  plan : (string * Xinv_parallel.Intra.technique) list;
  mem_partition : bool;
  domore_expected : bool;
  speccross_expected : bool;
}

let technique_of t label =
  match List.assoc_opt label t.plan with
  | Some tech -> tech
  | None -> invalid_arg (Printf.sprintf "Workload %s: no plan for inner %s" t.name label)

let plan_fn t label = technique_of t label

let input_of_string = function
  | "train" -> Some Train
  | "train-spec" | "trainspec" -> Some Train_spec
  | "ref" -> Some Ref
  | "ref-spec" | "refspec" -> Some Ref_spec
  | _ -> None

let input_name = function
  | Train -> "train"
  | Train_spec -> "train-spec"
  | Ref -> "ref"
  | Ref_spec -> "ref-spec"
