(** PARSEC BLACKSCHOLES ([bs_thread]): option-pricing sweeps writing through
    a static permutation.  Spec-DOALL plan (Table 5.1), hence SPECCROSS
    inapplicable; DOMORE's memory-partition scheduling turns the
    every-sweep rewrite dependence into same-worker ordering. *)

val make : unit -> Workload.t
