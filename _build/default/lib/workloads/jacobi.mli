(** PolyBench JACOBI: ping-pong stencil with one-invocation dependence
    distances (Table 5.3) and a residual diagnostic that blocks the DOMORE
    partition (Table 5.1). *)

val make : unit -> Workload.t
