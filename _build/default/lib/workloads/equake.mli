(** SpecFP EQUAKE: per-timestep sparse matrix-vector product with irregular
    read indirection; dynamically conflict-free (Table 5.3 "*") but
    statically opaque. *)

val make : unit -> Workload.t
