module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* PolyBench FDTD-2D (1-D-ized): three field-update invocations per
   timestep (ey, ex, hz) with stencil halos coupling consecutive
   invocations.  Like JACOBI, a field diagnostic in the sequential region
   blocks the DOMORE partition (Table 5.1: DOMORE x, SPECCROSS ok). *)

let trip_of = function Workload.Train | Workload.Train_spec -> 80 | _ -> 160

let outer_of = function Workload.Train | Workload.Train_spec -> 15 | _ -> 40

let build_input input =
  let n = trip_of input in
  let init k = Array.init (n + 2) (fun i -> float_of_int (((i * 29) + k) mod 977)) in
  Ir.Memory.create
    [
      Ir.Memory.Floats ("ex", init 1);
      Ir.Memory.Floats ("ey", init 2);
      Ir.Memory.Floats ("hz", init 3);
    ]

let update ~label ~dst ~srcs n =
  let out = E.(i + c 1) in
  let reads =
    Ir.Access.make dst out
    :: List.concat_map
         (fun s -> [ Ir.Access.make s E.i; Ir.Access.make s E.(i + c 1) ])
         srcs
  in
  let body =
    Ir.Stmt.make ~reads
      ~writes:[ Ir.Access.make dst out ]
      ~cost:(fun env -> Wl_util.jittered ~base:800. ~spread:0.4 ~salt:37 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        let s =
          List.fold_left
            (fun acc src ->
              acc +. Ir.Memory.get_float mem src j +. Ir.Memory.get_float mem src (j + 1))
            (Ir.Memory.get_float mem dst (j + 1))
            srcs
        in
        Ir.Memory.set_float mem dst (j + 1) (Float.rem s Wl_util.modulus))
      (Printf.sprintf "%s[j+1] -= coef*curl(%s)" dst (String.concat "," srcs))
  in
  let probe =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make dst E.(Bin (Mod, o, c n) + c 1) ]
      ~cost:(Ir.Stmt.fixed_cost 120.)
      "field_probe"
  in
  Ir.Program.inner ~pre:[ probe ] ~label ~trip:(Ir.Program.const_trip n) [ body ]

let build_program input =
  let n = trip_of input in
  Ir.Program.make ~name:"FDTD" ~outer_trip:(outer_of input)
    [
      update ~label:"ey" ~dst:"ey" ~srcs:[ "hz" ] n;
      update ~label:"ex" ~dst:"ex" ~srcs:[ "hz" ] n;
      update ~label:"hz" ~dst:"hz" ~srcs:[ "ex"; "ey" ] n;
    ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let key = (trip_of input, outer_of input) in
    match Hashtbl.find_opt progs key with
    | Some p -> p
    | None ->
        let p = build_program input in
        Hashtbl.replace progs key p;
        p
  in
  {
    Workload.name = "FDTD";
    suite = "PolyBench";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan =
      [
        ("ey", Xinv_parallel.Intra.Doall);
        ("ex", Xinv_parallel.Intra.Doall);
        ("hz", Xinv_parallel.Intra.Doall);
      ];
    mem_partition = false;
    domore_expected = false;
    speccross_expected = true;
  }
