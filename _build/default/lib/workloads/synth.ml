module Ir = Xinv_ir
module E = Xinv_ir.Expr

type spec = {
  outer : int;
  inners : int;
  trip : int;
  cells : int;
  within_safe : bool;
  base_cost : float;
  seed : int;
}

let default =
  { outer = 8; inners = 2; trip = 12; cells = 40; within_safe = true; base_cost = 400.; seed = 1 }

let make spec =
  assert (spec.outer > 0 && spec.inners > 0 && spec.trip > 0);
  assert ((not spec.within_safe) || spec.cells >= spec.trip);
  let rng = Xinv_util.Prng.create ~seed:spec.seed in
  (* One target-index array per inner loop and outer iteration. *)
  let total = spec.inners * spec.outer * spec.trip in
  let tgt = Array.make total 0 in
  for k = 0 to (spec.inners * spec.outer) - 1 do
    let slice =
      if spec.within_safe then Wl_util.distinct_ints rng ~bound:spec.cells ~n:spec.trip
      else Array.init spec.trip (fun _ -> Xinv_util.Prng.int rng spec.cells)
    in
    Array.blit slice 0 tgt (k * spec.trip) spec.trip
  done;
  let data0 = Array.init spec.cells (fun i -> float_of_int (i mod 61)) in
  let fresh () =
    Ir.Env.make
      (Ir.Memory.create
         [ Ir.Memory.Ints ("tgt", tgt); Ir.Memory.Floats ("data", data0) ])
  in
  let mk_inner li =
    let off = li * spec.outer * spec.trip in
    let at = E.(ld "tgt" (c off + (o * c spec.trip) + i)) in
    let body =
      Ir.Stmt.make
        ~reads:[ Ir.Access.make "data" at ]
        ~writes:[ Ir.Access.make "data" at ]
        ~cost:(fun env -> Wl_util.jittered ~base:spec.base_cost ~salt:(li + 7) env)
        ~exec:(fun env ->
          let mem = env.Ir.Env.mem in
          let c = E.eval env at in
          let k =
            float_of_int
              (((li * 131) + (env.Ir.Env.t_outer * 17) + env.Ir.Env.j_inner) mod 255)
          in
          Ir.Memory.set_float mem "data" c (Wl_util.mix (Ir.Memory.get_float mem "data" c) k))
        (Printf.sprintf "upd%d" li)
    in
    Ir.Program.inner
      ~label:(Printf.sprintf "L%d" li)
      ~trip:(Ir.Program.const_trip spec.trip) [ body ]
  in
  let prog =
    Ir.Program.make ~name:"SYNTH" ~outer_trip:spec.outer
      (List.init spec.inners mk_inner)
  in
  (prog, fresh)
