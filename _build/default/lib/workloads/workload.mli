(** Benchmark workload descriptor (the rows of Table 5.1).

    Each workload packages the performance-dominating loop nest of one
    benchmark as an IR program, fresh input states (train and reference, as
    in the dissertation's profiling/performance split), the parallelization
    plan Table 5.1 assigns to its inner loops, and the expected DOMORE /
    SPECCROSS applicability. *)

type input =
  | Train  (** profiling input *)
  | Train_spec
      (** profiling input matching [Ref_spec]'s characteristics (defaults to
          the same data as [Train] where the two do not differ) *)
  | Ref  (** performance input *)
  | Ref_spec
      (** performance input used for the SPECCROSS experiments when it
          differs from [Ref] (CG: the conflict-free sparsity of Table 5.3) *)

type t = {
  name : string;
  suite : string;
  func : string;  (** the paper's "Function" column *)
  exec_pct : float;  (** share of whole-program execution time *)
  program : input -> Xinv_ir.Program.t;
  fresh_env : input -> Xinv_ir.Env.t;
  plan : (string * Xinv_parallel.Intra.technique) list;  (** per inner label *)
  mem_partition : bool;  (** DOMORE uses the memory-partition policy *)
  domore_expected : bool;  (** Table 5.1 applicability *)
  speccross_expected : bool;
}

val technique_of : t -> string -> Xinv_parallel.Intra.technique

val plan_fn : t -> string -> Xinv_parallel.Intra.technique

val input_of_string : string -> input option

val input_name : input -> string
