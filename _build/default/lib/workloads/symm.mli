(** PolyBench SYMM: fully affine kernel with provably independent
    invocations, yet barrier-synchronized by the conventional pipeline.  Its
    deliberately tiny iterations make it the DOMORE overhead stress case
    (§5.1). *)

val make : unit -> Workload.t
