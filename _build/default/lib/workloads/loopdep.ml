module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* OmpSCR/OmpBench LOOPDEP: the Figure 4.1 pattern.  L1 reads B through
   index array C; L2 rewrites part of C itself.  Because workers update the
   very array the scheduler's computeAddr would have to load, DOMORE's slice
   is rejected (the dissertation's motivating limitation), while SPECCROSS
   profiles a safely large dependence distance (Table 5.3: 500/800). *)

let trip1_of = function Workload.Train | Workload.Train_spec -> 100 | _ -> 160

let trip2 = 40

let outer_of = function Workload.Train | Workload.Train_spec -> 30 | _ -> 60

let build_input input =
  let t1 = trip1_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 13 | _ -> 83 in
  let rng = Xinv_util.Prng.create ~seed in
  let nb = 400 in
  let a = Array.make t1 0. in
  let b = Array.init nb (fun i -> float_of_int ((i * 11) mod 613)) in
  let c0 = Array.init t1 (fun _ -> Xinv_util.Prng.int rng nb) in
  let d = Wl_util.distinct_ints rng ~bound:t1 ~n:trip2 in
  (* Ascending slots keep D.(k) >= k, bounding the dependence distance away
     from zero (the profiled minimum the paper reports for LOOPDEP). *)
  Array.sort compare d;
  let master = Array.init t1 (fun _ -> Xinv_util.Prng.int rng nb) in
  Ir.Memory.create
    [
      Ir.Memory.Floats ("A", a);
      Ir.Memory.Floats ("B", b);
      Ir.Memory.Ints ("C", c0);
      Ir.Memory.Ints ("D", d);
      Ir.Memory.Ints ("master", master);
    ]

let build_program input =
  let t1 = trip1_of input in
  let c_at = E.ld "C" E.i in
  let l1 =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "B" c_at; Ir.Access.make "A" E.i ]
      ~writes:[ Ir.Access.make "A" E.i ]
      ~cost:(fun env -> Wl_util.jittered ~base:1000. ~salt:43 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let bv = Ir.Memory.get_float mem "B" (E.eval env c_at) in
        let cur = Ir.Memory.get_float mem "A" env.Ir.Env.j_inner in
        Ir.Memory.set_float mem "A" env.Ir.Env.j_inner (Wl_util.mix cur bv))
      "A[i] = update_1(B[C[i]])"
  in
  let d_at = E.ld "D" E.i in
  let l2 =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "master" d_at ]
      ~writes:[ Ir.Access.make "C" d_at ]
      ~cost:(fun env -> Wl_util.jittered ~base:1000. ~salt:47 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let slot = E.eval env d_at in
        let base = Ir.Memory.get_int mem "master" slot in
        let nb = Ir.Memory.size mem "B" in
        Ir.Memory.set_int mem "C" slot ((base + (7 * env.Ir.Env.t_outer)) mod nb))
      "C[D[k]] = update_3(k)"
  in
  Ir.Program.make ~name:"LOOPDEP" ~outer_trip:(outer_of input)
    [
      Ir.Program.inner ~label:"L1" ~trip:(Ir.Program.const_trip t1) [ l1 ];
      Ir.Program.inner ~label:"L2" ~trip:(Ir.Program.const_trip trip2) [ l2 ];
    ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let key = (trip1_of input, outer_of input) in
    match Hashtbl.find_opt progs key with
    | Some p -> p
    | None ->
        let p = build_program input in
        Hashtbl.replace progs key p;
        p
  in
  {
    Workload.name = "LOOPDEP";
    suite = "OMPBench";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan =
      [ ("L1", Xinv_parallel.Intra.Doall); ("L2", Xinv_parallel.Intra.Doall) ];
    mem_partition = false;
    domore_expected = false;
    speccross_expected = true;
  }
