module Ir = Xinv_ir
module E = Xinv_ir.Expr

let rows_of = function
  | Workload.Train | Workload.Train_spec -> 180
  | Workload.Ref | Workload.Ref_spec -> 700

let banded = function Workload.Train_spec | Workload.Ref_spec -> true | _ -> false

let max_row = 12

let build_input input =
  let n = rows_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 11 | _ -> 42 in
  let rng = Xinv_util.Prng.create ~seed in
  let rowlen = Array.init n (fun _ -> 6 + Xinv_util.Prng.int rng 7) in
  let rowstart = Array.make n 0 in
  for t = 1 to n - 1 do
    rowstart.(t) <- rowstart.(t - 1) + rowlen.(t - 1)
  done;
  let nnz = rowstart.(n - 1) + rowlen.(n - 1) in
  let m = if banded input then max_row * n else nnz in
  let col = Array.make nnz 0 in
  (* Fresh columns are drawn through a permutation so they spread uniformly
     over the column space (and hence over memory partitions). *)
  let perm = Wl_util.permutation rng nnz in
  let fresh = ref 0 in
  for t = 0 to n - 1 do
    let len = rowlen.(t) in
    let cols =
      if banded input then
        (* Banded, column-major: rows touch pairwise-disjoint columns that
           spread across the whole column space (and hence across memory
           partitions). *)
        Array.init len (fun j -> (j * n) + t)
      else
        (* Mostly fresh columns; with probability 72.4% one column of the
           row is reused from an earlier row — Figure 3.1's manifest rate
           for the update dependence. *)
        Array.init len (fun k ->
            if k = 0 && t > 0 && Xinv_util.Prng.chance rng 0.724 then
              col.(Xinv_util.Prng.int rng rowstart.(t))
            else begin
              let c = perm.(!fresh) in
              incr fresh;
              c
            end)
    in
    Array.blit cols 0 col rowstart.(t) len
  done;
  let c0 = Array.init m (fun i -> float_of_int (i mod 251)) in
  Ir.Memory.create
    [
      Ir.Memory.Ints ("rowlen", rowlen);
      Ir.Memory.Ints ("rowstart", rowstart);
      Ir.Memory.Ints ("col", col);
      Ir.Memory.Floats ("C", c0);
    ]

let build_program () =
  let col_expr = E.ld "col" E.(ld "rowstart" o + i) in
  let update =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "C" col_expr ]
      ~writes:[ Ir.Access.make "C" col_expr ]
      ~cost:(fun env -> Wl_util.jittered ~base:900. ~salt:3 env)
      ~exec:(fun env ->
        let ci = E.eval env col_expr in
        let cur = Ir.Memory.get_float env.Ir.Env.mem "C" ci in
        let k =
          float_of_int (((env.Ir.Env.t_outer * 31) + env.Ir.Env.j_inner) mod 97)
        in
        Ir.Memory.set_float env.Ir.Env.mem "C" ci (Wl_util.mix cur k))
      "update(&C[col[rs+j]])"
  in
  let bounds =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "rowstart" E.o; Ir.Access.make "rowlen" E.o ]
      ~cost:(Ir.Stmt.fixed_cost 100.)
      "start=A[i]; end=B[i]"
  in
  let trip env = Ir.Memory.get_int env.Ir.Env.mem "rowlen" env.Ir.Env.t_outer in
  Ir.Program.make ~name:"CG" ~outer_trip:(rows_of Workload.Ref)
    [ Ir.Program.inner ~pre:[ bounds ] ~label:"sparse" ~trip [ update ] ]

(* The train input has fewer rows than the program's outer trip; build a
   separate program per arity.  Trip counts and data always come from the
   environment, so the statements are shared safely. *)
let make () =
  let base = lazy (build_program ()) in
  let program input =
    { (Lazy.force base) with Ir.Program.outer_trip = rows_of input }
  in
  {
    Workload.name = "CG";
    suite = "NAS";
    func = "sparse";
    exec_pct = 12.2;
    program;
    fresh_env =
      (fun input ->
        let mem = build_input input in
        Ir.Env.make mem);
    plan = [ ("sparse", Xinv_parallel.Intra.Localwrite) ];
    mem_partition = true;
    domore_expected = true;
    speccross_expected = true;
  }
