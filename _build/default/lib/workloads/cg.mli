(** NAS CG, function [sparse] (dissertation Figure 3.1): an outer loop over
    matrix rows whose inner loop updates [C] through a column index array.
    Iterations within a row touch distinct columns (inner loop DOALL-able at
    runtime), but ~72% of rows share a column with an earlier row — the
    cross-invocation dependence DOMORE synchronizes dynamically.  The
    [Ref_spec] input uses a banded sparsity with no cross-row sharing (the
    conflict-free behaviour Table 5.3 reports for the SPECCROSS runs). *)

val make : unit -> Workload.t
