(** PolyBench FDTD: three coupled field-update invocations per timestep;
    like JACOBI, DOMORE-blocked by a sequential-region field probe. *)

val make : unit -> Workload.t
