lib/workloads/eclat.ml: Array Hashtbl Wl_util Workload Xinv_ir Xinv_parallel Xinv_util
