lib/workloads/symm.ml: Array Float Hashtbl Wl_util Workload Xinv_ir Xinv_parallel
