lib/workloads/eclat.mli: Workload
