lib/workloads/equake.mli: Workload
