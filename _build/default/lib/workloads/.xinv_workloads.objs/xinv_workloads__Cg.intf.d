lib/workloads/cg.mli: Workload
