lib/workloads/cg.ml: Array Lazy Wl_util Workload Xinv_ir Xinv_parallel Xinv_util
