lib/workloads/registry.ml: Blackscholes Cg Eclat Equake Fdtd Fluidanimate Jacobi List Llubench Loopdep Printf String Symm Workload
