lib/workloads/fdtd.ml: Array Float Hashtbl List Printf String Wl_util Workload Xinv_ir Xinv_parallel
