lib/workloads/loopdep.mli: Workload
