lib/workloads/fdtd.mli: Workload
