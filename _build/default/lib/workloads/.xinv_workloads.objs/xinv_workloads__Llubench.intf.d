lib/workloads/llubench.mli: Workload
