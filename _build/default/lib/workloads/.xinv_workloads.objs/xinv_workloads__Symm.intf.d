lib/workloads/symm.mli: Workload
