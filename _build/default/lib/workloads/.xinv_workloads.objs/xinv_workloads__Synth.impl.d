lib/workloads/synth.ml: Array List Printf Wl_util Xinv_ir Xinv_util
