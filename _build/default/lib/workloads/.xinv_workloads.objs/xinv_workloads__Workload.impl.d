lib/workloads/workload.ml: List Printf Xinv_ir Xinv_parallel
