lib/workloads/jacobi.ml: Array Float Hashtbl Printf Wl_util Workload Xinv_ir Xinv_parallel
