lib/workloads/jacobi.mli: Workload
