lib/workloads/fluidanimate.ml: Array Float Hashtbl List Stdlib Wl_util Workload Xinv_ir Xinv_parallel Xinv_util
