lib/workloads/equake.ml: Array Float Hashtbl Wl_util Workload Xinv_ir Xinv_parallel Xinv_util
