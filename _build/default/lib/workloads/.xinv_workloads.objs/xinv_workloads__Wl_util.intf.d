lib/workloads/wl_util.mli: Xinv_ir Xinv_util
