lib/workloads/wl_util.ml: Array Float Hashtbl Int64 Xinv_ir Xinv_util
