lib/workloads/workload.mli: Xinv_ir Xinv_parallel
