lib/workloads/synth.mli: Xinv_ir
