(** LLVMBENCH LLUBENCH: linked-list update micro-benchmark.  Every dynamic
    access is distinct (Table 5.3 reports no conflicts) but the pointer
    indirection defeats static analysis, so the barrier baseline synchronizes
    after every invocation anyway. *)

val make : unit -> Workload.t
