module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* MineBench ECLAT, function process_inverti: the outer loop walks a graph
   of item nodes; the inner loop appends each node's items to per-transaction
   lists in a vertical database.  Items within one node map to distinct
   transactions (inner loop conflict-free at runtime), but nearly every node
   shares transactions with earlier nodes — the frequent cross-invocation
   dependence that makes ECLAT the DOMORE stress case (§5.1, 12.5%
   scheduler/worker ratio, plateau near 5 threads). *)


let nodes_of = function Workload.Train | Workload.Train_spec -> 120 | _ -> 400

let build_input input =
  let n = nodes_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 19 | _ -> 73 in
  let rng = Xinv_util.Prng.create ~seed in
  let ntxn = 160 in
  let itemlen = Array.init n (fun _ -> 8 + Xinv_util.Prng.int rng 8) in
  let itemstart = Array.make n 0 in
  for t = 1 to n - 1 do
    itemstart.(t) <- itemstart.(t - 1) + itemlen.(t - 1)
  done;
  let total = itemstart.(n - 1) + itemlen.(n - 1) in
  let txn = Array.make total 0 in
  for t = 0 to n - 1 do
    (* Each node's items hit distinct transactions drawn from a small pool:
       consecutive nodes conflict almost surely. *)
    let d = Wl_util.distinct_ints rng ~bound:ntxn ~n:itemlen.(t) in
    Array.blit d 0 txn itemstart.(t) itemlen.(t)
  done;
  let db = Array.make ntxn 0. in
  let cnt = Array.make ntxn 0. in
  Ir.Memory.create
    [
      Ir.Memory.Ints ("itemlen", itemlen);
      Ir.Memory.Ints ("itemstart", itemstart);
      Ir.Memory.Ints ("txn", txn);
      Ir.Memory.Floats ("db", db);
      Ir.Memory.Floats ("cnt", cnt);
    ]

let txn_expr = E.ld "txn" E.(ld "itemstart" o + i)

let build_program outer =
  let append =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "db" txn_expr; Ir.Access.make "cnt" txn_expr ]
      ~writes:[ Ir.Access.make "db" txn_expr; Ir.Access.make "cnt" txn_expr ]
      ~cost:(fun env -> Wl_util.jittered ~base:800. ~spread:0.5 ~salt:29 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let ti = E.eval env txn_expr in
        let item = float_of_int ((env.Ir.Env.t_outer * 7) mod 101) in
        Ir.Memory.set_float mem "db" ti (Wl_util.mix (Ir.Memory.get_float mem "db" ti) item);
        Ir.Memory.set_float mem "cnt" ti (Ir.Memory.get_float mem "cnt" ti +. 1.))
      "append(db[txn[it]], item)"
  in
  let fetch =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "itemstart" E.o; Ir.Access.make "itemlen" E.o ]
      ~cost:(Ir.Stmt.fixed_cost 160.)
      "node = next(graph)"
  in
  let trip env = Ir.Memory.get_int env.Ir.Env.mem "itemlen" env.Ir.Env.t_outer in
  Ir.Program.make ~name:"ECLAT" ~outer_trip:outer
    [ Ir.Program.inner ~pre:[ fetch ] ~label:"invert" ~trip [ append ] ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let n = nodes_of input in
    match Hashtbl.find_opt progs n with
    | Some p -> p
    | None ->
        let p = build_program n in
        Hashtbl.replace progs n p;
        p
  in
  {
    Workload.name = "ECLAT";
    suite = "MineBench";
    func = "process_inverti";
    exec_pct = 24.5;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan = [ ("invert", Xinv_parallel.Intra.Spec_doall) ];
    mem_partition = false;
    domore_expected = true;
    speccross_expected = false;
  }
