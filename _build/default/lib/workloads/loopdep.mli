(** OmpBench LOOPDEP: the Figure 4.1 pattern — one loop reads through an
    index array another loop rewrites, which is exactly what the DOMORE
    slice cannot run ahead of. *)

val make : unit -> Workload.t
