(** Synthetic workload generator for property-based testing.

    Produces loop-nest programs with randomly drawn irregular access
    patterns whose conflict density is controlled, so tests can exercise the
    runtime techniques across the whole spectrum from conflict-free to
    conflict-heavy. *)

type spec = {
  outer : int;
  inners : int;  (** number of inner loops per outer iteration *)
  trip : int;
  cells : int;  (** size of the shared array; fewer cells, more conflicts *)
  within_safe : bool;
      (** true: iterations of one invocation touch distinct cells (DOALL
          legal at runtime); false: within-invocation conflicts too *)
  base_cost : float;
  seed : int;
}

val default : spec

val make : spec -> Xinv_ir.Program.t * (unit -> Xinv_ir.Env.t)
(** A program and a fresh-state generator (every call returns an identical
    initial environment). *)
