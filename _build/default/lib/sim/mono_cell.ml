type t = { mutable value : int; mutable waiters : (int * (unit -> unit)) list }

let create ?(init = min_int) () = { value = init; waiters = [] }

let get c = c.value

let set c v =
  assert (v >= c.value);
  c.value <- v;
  let ready, rest = List.partition (fun (th, _) -> th <= v) c.waiters in
  c.waiters <- rest;
  List.iter (fun (_, w) -> w ()) (List.rev ready)

let wait_ge ?(cat = Category.Sync_wait) c threshold =
  if c.value < threshold then begin
    let t0 = Proc.now () in
    Proc.suspend (fun waker -> c.waiters <- (threshold, waker) :: c.waiters);
    Proc.charge_wait cat ~since:t0
  end

let raise_to c v = if v > c.value then set c v
