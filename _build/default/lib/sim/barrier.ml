type t = {
  parties : int;
  mutable count : int;
  mutable waiters : (unit -> unit) list;
  mutable episodes : int;
}

let create ~parties =
  assert (parties > 0);
  { parties; count = 0; waiters = []; episodes = 0 }

let parties b = b.parties

let waits b = b.episodes

let wait ?(cost = 0.) ?(cost_cat = Category.Barrier_wait) b =
  if cost > 0. then Proc.advance cost_cat cost;
  b.count <- b.count + 1;
  if b.count = b.parties then begin
    (* Last arrival: release the generation. *)
    let ws = b.waiters in
    b.waiters <- [];
    b.count <- 0;
    b.episodes <- b.episodes + 1;
    List.iter (fun w -> w ()) (List.rev ws)
  end
  else begin
    let t0 = Proc.now () in
    Proc.suspend (fun waker -> b.waiters <- waker :: b.waiters);
    Proc.charge_wait Category.Barrier_wait ~since:t0
  end
