(** Process-side operations for code running inside a simulated thread.

    All functions perform effects handled by {!Engine.run}; calling them
    outside a simulated thread raises [Effect.Unhandled]. *)

val advance : ?label:string -> Category.t -> float -> unit
(** Consume virtual cycles, charged to the category (and traced). *)

val work : ?label:string -> float -> unit
(** [work c] = [advance Category.Work c]. *)

val now : unit -> float

val self : unit -> Engine.tid

val engine : unit -> Engine.t

val spawn : ?name:string -> (unit -> unit) -> Engine.tid

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling thread; [register] receives a waker
    that, when called (once), makes the thread runnable at the waker caller's
    current virtual time. *)

val charge_wait : Category.t -> since:float -> unit
(** Attribute [now () - since] virtual cycles of blocked time. *)

val yield : unit -> unit
(** Re-schedule self at the current time (lets co-scheduled events run). *)
