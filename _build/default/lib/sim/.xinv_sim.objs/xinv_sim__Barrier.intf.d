lib/sim/barrier.mli: Category
