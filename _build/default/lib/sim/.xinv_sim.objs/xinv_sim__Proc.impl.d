lib/sim/proc.ml: Category Effect Engine
