lib/sim/mono_cell.ml: Category List Proc
