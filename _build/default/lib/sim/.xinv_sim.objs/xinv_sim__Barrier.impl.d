lib/sim/barrier.ml: Category List Proc
