lib/sim/trace.ml: Category Hashtbl List Printf Stdlib String
