lib/sim/machine.ml: Format Stdlib
