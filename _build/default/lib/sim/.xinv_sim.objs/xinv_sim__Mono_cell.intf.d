lib/sim/mono_cell.mli: Category
