lib/sim/proc.mli: Category Engine
