lib/sim/engine.ml: Category Effect Hashtbl List Printf Stdlib String Trace Xinv_util
