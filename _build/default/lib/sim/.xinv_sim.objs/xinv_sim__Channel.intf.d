lib/sim/channel.mli:
