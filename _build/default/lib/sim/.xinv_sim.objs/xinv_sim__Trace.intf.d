lib/sim/trace.mli: Category
