lib/sim/engine.mli: Category Effect Trace
