lib/sim/channel.ml: Category Proc Queue
