lib/sim/category.mli:
