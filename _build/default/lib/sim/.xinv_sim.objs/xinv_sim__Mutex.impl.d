lib/sim/mutex.ml: Category Proc
