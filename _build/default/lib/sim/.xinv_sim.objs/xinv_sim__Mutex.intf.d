lib/sim/mutex.mli:
