lib/sim/category.ml:
