(** Simulated pthread-style cyclic barrier.

    Arrival costs [cost] cycles of runtime bookkeeping; time spent blocked
    until the last party arrives is charged to {!Category.Barrier_wait} —
    the quantity Figure 4.3 of the dissertation reports. *)

type t

val create : parties:int -> t

val wait : ?cost:float -> ?cost_cat:Category.t -> t -> unit
(** Block until [parties] threads (including self) have called [wait] in the
    current generation.  The arrival cost is charged to [cost_cat]
    (default {!Category.Barrier_wait}, matching how the dissertation counts
    barrier overhead). *)

val parties : t -> int

val waits : t -> int
(** Total number of completed barrier episodes so far. *)
