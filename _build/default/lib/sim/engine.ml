type tid = int

type thread_state = Ready | Running | Suspended | Finished

type thread = { id : tid; name : string; mutable state : thread_state }

type t = {
  events : (float * (unit -> unit)) Xinv_util.Heap.t;
  mutable clock : float;
  mutable threads : thread list;  (* newest first *)
  mutable next_tid : int;
  mutable cur : tid;
  charges : (tid * int, float) Hashtbl.t;
  trace_on : bool;
  mutable trace : Trace.segment list;  (* newest first *)
}

exception Deadlock of string

type _ Effect.t +=
  | E_advance : Category.t * string option * float -> unit Effect.t
  | E_suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | E_now : float Effect.t
  | E_self : tid Effect.t
  | E_engine : t Effect.t
  | E_spawn : string * (unit -> unit) -> tid Effect.t

let create ?(trace = false) () =
  {
    events = Xinv_util.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b);
    clock = 0.;
    threads = [];
    next_tid = 0;
    cur = -1;
    charges = Hashtbl.create 64;
    trace_on = trace;
    trace = [];
  }

let now eng = eng.clock

let thread_count eng = List.length eng.threads

let find_thread eng id = List.find (fun th -> th.id = id) eng.threads

let name_of eng id = (find_thread eng id).name

let charge eng id cat dt =
  let key = (id, Category.index cat) in
  let cur = try Hashtbl.find eng.charges key with Not_found -> 0. in
  Hashtbl.replace eng.charges key (cur +. dt)

let charged eng id cat =
  try Hashtbl.find eng.charges (id, Category.index cat) with Not_found -> 0.

let total eng cat =
  List.fold_left (fun acc th -> acc +. charged eng th.id cat) 0. eng.threads

let busy eng id =
  List.fold_left (fun acc cat -> acc +. charged eng id cat) 0. Category.all

let add_segment eng seg = if eng.trace_on then eng.trace <- seg :: eng.trace

let segments eng = List.rev eng.trace

let schedule eng time thunk = Xinv_util.Heap.push eng.events (time, thunk)

(* Run [body] as a simulated thread under the effect handler.  Continuations
   captured by the handler are resumed from the engine loop, re-entering the
   same handler frame. *)
let rec start_thread eng th body =
  let open Effect.Deep in
  match_with
    (fun () ->
      th.state <- Running;
      body ())
    ()
    {
      retc = (fun () -> th.state <- Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_advance (cat, label, dt) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  assert (dt >= 0.);
                  charge eng th.id cat dt;
                  if eng.trace_on then
                    add_segment eng
                      {
                        Trace.tid = th.id;
                        label = (match label with Some l -> l | None -> Category.to_string cat);
                        cat;
                        t_start = eng.clock;
                        t_end = eng.clock +. dt;
                      };
                  th.state <- Ready;
                  schedule eng (eng.clock +. dt) (fun () ->
                      eng.cur <- th.id;
                      th.state <- Running;
                      continue k ()))
          | E_suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  th.state <- Suspended;
                  let woken = ref false in
                  let waker () =
                    if not !woken then begin
                      woken := true;
                      th.state <- Ready;
                      schedule eng eng.clock (fun () ->
                          eng.cur <- th.id;
                          th.state <- Running;
                          continue k ())
                    end
                  in
                  register waker)
          | E_now -> Some (fun k -> continue k eng.clock)
          | E_self -> Some (fun k -> continue k th.id)
          | E_engine -> Some (fun k -> continue k eng)
          | E_spawn (name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let id = spawn_at eng ~name f in
                  continue k id)
          | _ -> None);
    }

and spawn_at : t -> name:string -> (unit -> unit) -> int =
 fun eng ~name body ->
  let id = eng.next_tid in
  eng.next_tid <- id + 1;
  let th = { id; name; state = Ready } in
  eng.threads <- th :: eng.threads;
  schedule eng eng.clock (fun () ->
      eng.cur <- th.id;
      start_thread eng th body);
  id

let spawn eng ?name body =
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" eng.next_tid in
  spawn_at eng ~name body

let run eng =
  let rec loop () =
    match Xinv_util.Heap.pop eng.events with
    | None ->
        let stuck =
          List.filter (fun th -> th.state = Suspended || th.state = Ready) eng.threads
        in
        if stuck <> [] then
          raise
            (Deadlock
               (String.concat ", "
                  (List.map (fun th -> Printf.sprintf "%s(#%d)" th.name th.id) stuck)))
    | Some (time, thunk) ->
        assert (time >= eng.clock -. 1e-9);
        eng.clock <- Stdlib.max eng.clock time;
        thunk ();
        loop ()
  in
  loop ()
