let advance ?label cat dt = Effect.perform (Engine.E_advance (cat, label, dt))

let work ?label dt = advance ?label Category.Work dt

let now () = Effect.perform Engine.E_now

let self () = Effect.perform Engine.E_self

let engine () = Effect.perform Engine.E_engine

let spawn ?name body =
  let name = match name with Some n -> n | None -> "child" in
  Effect.perform (Engine.E_spawn (name, body))

let suspend register = Effect.perform (Engine.E_suspend register)

let charge_wait cat ~since =
  let eng = engine () in
  let dt = now () -. since in
  if dt > 0. then Engine.charge eng (self ()) cat dt

let yield () = advance Category.Runtime 0.
