(** Execution-plan traces: labelled time segments per simulated thread.

    Used to regenerate the dissertation's execution-plan diagrams
    (Figures 1.4, 3.2, 4.6) as text. *)

type segment = {
  tid : int;
  label : string;
  cat : Category.t;
  t_start : float;
  t_end : float;
}

val render : ?width:int -> segment list -> string
(** [render segs] draws one column per thread and one row per time slice,
    showing which labelled segment each thread was executing. *)

val by_thread : segment list -> (int * segment list) list
(** Segments grouped by thread id, each group oldest-first. *)
