type t =
  | Work
  | Sequential
  | Redundant
  | Barrier_wait
  | Sync_wait
  | Queue
  | Runtime
  | Checker
  | Checkpoint
  | Idle

let to_string = function
  | Work -> "work"
  | Sequential -> "sequential"
  | Redundant -> "redundant"
  | Barrier_wait -> "barrier-wait"
  | Sync_wait -> "sync-wait"
  | Queue -> "queue"
  | Runtime -> "runtime"
  | Checker -> "checker"
  | Checkpoint -> "checkpoint"
  | Idle -> "idle"

let all =
  [ Work; Sequential; Redundant; Barrier_wait; Sync_wait; Queue; Runtime; Checker; Checkpoint; Idle ]

let equal a b = a = b

let index = function
  | Work -> 0
  | Sequential -> 1
  | Redundant -> 2
  | Barrier_wait -> 3
  | Sync_wait -> 4
  | Queue -> 5
  | Runtime -> 6
  | Checker -> 7
  | Checkpoint -> 8
  | Idle -> 9

let count = 10
