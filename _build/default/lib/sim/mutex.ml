type t = {
  mutable held : bool;
  mutable waiters : (unit -> unit) list;
  acquire_cost : float;
  mutable contended : int;
}

let create ?(acquire_cost = 0.) () =
  { held = false; waiters = []; acquire_cost; contended = 0 }

let contended m = m.contended

let rec lock m =
  if m.acquire_cost > 0. then Proc.advance Category.Runtime m.acquire_cost;
  if m.held then begin
    m.contended <- m.contended + 1;
    let t0 = Proc.now () in
    Proc.suspend (fun waker -> m.waiters <- m.waiters @ [ waker ]);
    Proc.charge_wait Category.Sync_wait ~since:t0;
    lock m
  end
  else m.held <- true

let unlock m =
  assert m.held;
  m.held <- false;
  match m.waiters with
  | [] -> ()
  | w :: rest ->
      m.waiters <- rest;
      w ()

let with_lock m f =
  lock m;
  let r = try f () with e -> unlock m; raise e in
  unlock m;
  r
