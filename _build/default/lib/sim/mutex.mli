(** Simulated mutual-exclusion lock (used by the DOANY baseline).

    Acquisition costs a fixed number of cycles; contention time is charged to
    {!Category.Sync_wait}. *)

type t

val create : ?acquire_cost:float -> unit -> t

val lock : t -> unit

val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a

val contended : t -> int
(** Number of lock acquisitions that had to wait. *)
