(** Cost model of the simulated multicore (virtual cycles).

    Default values are calibrated so that the relative costs match the
    evaluation platform of the dissertation (24-core Xeon X7460, pthreads):
    queue operations are tens of cycles, barriers hundreds of cycles plus a
    per-thread convoy component, checkpoints tens of thousands.  Absolute
    values are arbitrary; experiments only compare executions under the same
    model. *)

type t = {
  barrier_base : float;  (** fixed cost of one barrier episode *)
  barrier_per_thread : float;  (** additional cost per participating thread *)
  queue_produce : float;
  queue_consume : float;
  lock_cost : float;  (** uncontended lock acquire+release *)
  sched_per_iter : float;  (** DOMORE scheduler dispatch bookkeeping per iteration *)
  shadow_per_addr : float;  (** shadow-memory lookup+update per address *)
  sig_per_access : float;  (** signature update per instrumented access *)
  check_per_sig : float;  (** checker cost per signature comparison *)
  task_enter : float;  (** SPECCROSS enter_task: read other threads' positions *)
  task_exit : float;  (** SPECCROSS exit_task: log signature, bump counter *)
  checkpoint_cost : float;  (** fork + register save *)
  recovery_cost : float;  (** kill workers, restore memory, respawn *)
  spawn_cost : float;  (** thread creation *)
  contention : float;
      (** per-extra-thread slowdown of useful work: the shared front-side-bus
          bandwidth model of the evaluation platform (4-socket X7460) *)
}

val default : t

val work_factor : t -> threads:int -> float
(** Multiplier applied to every cycle of useful work when [threads] cores
    are active. *)

val pp : Format.formatter -> t -> unit
