type t = {
  barrier_base : float;
  barrier_per_thread : float;
  queue_produce : float;
  queue_consume : float;
  lock_cost : float;
  sched_per_iter : float;
  shadow_per_addr : float;
  sig_per_access : float;
  check_per_sig : float;
  task_enter : float;
  task_exit : float;
  checkpoint_cost : float;
  recovery_cost : float;
  spawn_cost : float;
  contention : float;
}

let default =
  {
    barrier_base = 4_000.;
    barrier_per_thread = 350.;
    queue_produce = 22.;
    queue_consume = 18.;
    lock_cost = 70.;
    sched_per_iter = 14.;
    shadow_per_addr = 8.;
    sig_per_access = 6.;
    check_per_sig = 3.;
    task_enter = 35.;
    task_exit = 25.;
    checkpoint_cost = 60_000.;
    recovery_cost = 120_000.;
    spawn_cost = 8_000.;
    contention = 0.022;
  }

let work_factor m ~threads =
  1. +. (m.contention *. float_of_int (Stdlib.max 0 (threads - 1)))

let pp ppf m =
  Format.fprintf ppf
    "@[<v>barrier: %.0f + %.0f/thread@ queue: produce %.0f consume %.0f@ lock: %.0f@ \
     scheduler/iter: %.0f  shadow/addr: %.0f@ signature/access: %.0f  check/sig: %.0f@ \
     task enter/exit: %.0f/%.0f@ checkpoint: %.0f  recovery: %.0f  spawn: %.0f@]"
    m.barrier_base m.barrier_per_thread m.queue_produce m.queue_consume m.lock_cost
    m.sched_per_iter m.shadow_per_addr m.sig_per_access m.check_per_sig m.task_enter
    m.task_exit m.checkpoint_cost m.recovery_cost m.spawn_cost
