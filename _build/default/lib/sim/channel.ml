type 'a t = {
  items : 'a Queue.t;
  mutable waiters : (unit -> unit) list;  (* consumers blocked on empty *)
  produce_cost : float;
  consume_cost : float;
  mutable produced : int;
}

let create ?(produce_cost = 0.) ?(consume_cost = 0.) () =
  { items = Queue.create (); waiters = []; produce_cost; consume_cost; produced = 0 }

let length q = Queue.length q.items

let produced q = q.produced

let produce q x =
  if q.produce_cost > 0. then Proc.advance Category.Queue q.produce_cost;
  Queue.push x q.items;
  q.produced <- q.produced + 1;
  match q.waiters with
  | [] -> ()
  | w :: rest ->
      q.waiters <- rest;
      w ()

let rec consume q =
  if Queue.is_empty q.items then begin
    let t0 = Proc.now () in
    Proc.suspend (fun waker -> q.waiters <- q.waiters @ [ waker ]);
    Proc.charge_wait Category.Queue ~since:t0;
    consume q
  end
  else begin
    if q.consume_cost > 0. then Proc.advance Category.Queue q.consume_cost;
    Queue.pop q.items
  end

let try_consume q =
  if Queue.is_empty q.items then None
  else begin
    if q.consume_cost > 0. then Proc.advance Category.Queue q.consume_cost;
    Some (Queue.pop q.items)
  end
