(** Monotonically increasing integer cell with threshold waiters.

    Models the [latestFinished] status array of DOMORE (Algorithm 2) and the
    epoch/task progress counters of SPECCROSS: a thread can block until the
    cell reaches a given value.  Waiting time is charged to the category
    supplied at the wait site. *)

type t

val create : ?init:int -> unit -> t

val get : t -> int

val set : t -> int -> unit
(** [set c v] requires [v >= get c]; wakes every waiter whose threshold is
    now satisfied. *)

val wait_ge : ?cat:Category.t -> t -> int -> unit
(** Block until the cell value is [>=] the threshold. *)

val raise_to : t -> int -> unit
(** [raise_to c v] is [set c v] when [v] exceeds the current value and a
    no-op otherwise (safe under concurrent monotone bumps, e.g. abort
    wake-ups racing normal progress). *)
