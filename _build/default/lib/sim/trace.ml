type segment = {
  tid : int;
  label : string;
  cat : Category.t;
  t_start : float;
  t_end : float;
}

let by_thread segs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur = try Hashtbl.find tbl s.tid with Not_found -> [] in
      Hashtbl.replace tbl s.tid (s :: cur))
    segs;
  Hashtbl.fold (fun tid ss acc -> (tid, List.rev ss) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Quantize the timeline into [width] rows and show, for each thread, the
   label of the segment active at each row's start time. *)
let render ?(width = 40) segs =
  match segs with
  | [] -> "(empty trace)"
  | _ ->
      let t_max = List.fold_left (fun acc s -> Stdlib.max acc s.t_end) 0. segs in
      let groups = by_thread segs in
      let tids = List.map fst groups in
      let col_w =
        List.fold_left
          (fun acc s -> Stdlib.max acc (String.length s.label))
          8 segs
      in
      let cell tid t =
        let active =
          List.find_opt
            (fun s -> s.tid = tid && s.t_start <= t && t < s.t_end)
            segs
        in
        match active with Some s -> s.label | None -> "." in
      let header =
        String.concat " | "
          (List.map (fun tid -> Printf.sprintf "%-*s" col_w (Printf.sprintf "T%d" tid)) tids)
      in
      let rows =
        List.init width (fun i ->
            let t = t_max *. float_of_int i /. float_of_int width in
            let cells =
              List.map (fun tid -> Printf.sprintf "%-*s" col_w (cell tid t)) tids
            in
            Printf.sprintf "%8.0f  %s" t (String.concat " | " cells))
      in
      String.concat "\n" ((Printf.sprintf "%8s  %s" "time" header) :: rows)
