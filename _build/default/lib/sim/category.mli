(** Accounting categories for simulated virtual time.

    Every cycle a simulated thread spends is charged to exactly one category,
    which is what lets the experiment harness report barrier overhead
    (Figure 4.3), scheduler/worker ratios (Table 5.2) and processor
    utilization the way the dissertation does. *)

type t =
  | Work  (** useful computation from the original program *)
  | Sequential  (** sequential region executed by one thread *)
  | Redundant  (** duplicated computation (LOCALWRITE, duplicated scheduler) *)
  | Barrier_wait  (** stalled at a barrier *)
  | Sync_wait  (** stalled on a DOMORE synchronization condition *)
  | Queue  (** produce/consume bookkeeping on communication queues *)
  | Runtime  (** runtime-engine bookkeeping (shadow memory, signatures) *)
  | Checker  (** speculation checker thread activity *)
  | Checkpoint  (** checkpointing and misspeculation recovery *)
  | Idle  (** no work left before the end of the region *)

val to_string : t -> string

val all : t list

val equal : t -> t -> bool

val index : t -> int
(** Dense index, [0 .. List.length all - 1]. *)

val count : int
