lib/core/crossinv.ml: List Printf Stdlib String Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim Xinv_speccross Xinv_workloads
