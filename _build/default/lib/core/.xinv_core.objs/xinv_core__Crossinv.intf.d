lib/core/crossinv.mli: Xinv_parallel Xinv_sim Xinv_speccross Xinv_workloads
