lib/speccross/profiler.mli: Format Xinv_ir
