lib/speccross/runtime.mli: Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim
