lib/speccross/profiler.ml: Format Stdlib Xinv_ir
