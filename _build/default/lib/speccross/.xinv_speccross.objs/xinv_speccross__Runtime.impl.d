lib/speccross/runtime.ml: Array Format Hashtbl List Printf Stdlib String Sys Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim
