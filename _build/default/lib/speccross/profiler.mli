(** SPECCROSS profiling mode (dissertation §4.4).

    Runs the program sequentially under the dependence profiler, measures the
    minimum task distance between cross-invocation conflicts, and converts it
    into a speculative range (in epochs) for the runtime.  A distance below
    the worker count recommends against speculation. *)

type t = {
  min_task_distance : int option;  (** [None]: no conflict ever manifested *)
  avg_tasks_per_epoch : float;
  epochs : int;
  tasks : int;
  spec_distance : int;  (** how many tasks a thread may lead the slowest *)
}

val profile : Xinv_ir.Program.t -> Xinv_ir.Env.t -> t
(** Mutates the environment's memory (a profiling run on the train input). *)

val profitable : t -> workers:int -> bool
(** False when the minimum dependence distance is smaller than the worker
    count (the dissertation's default threshold). *)

val pp : Format.formatter -> t -> unit
