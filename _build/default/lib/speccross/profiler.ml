module Ir = Xinv_ir

type t = {
  min_task_distance : int option;
  avg_tasks_per_epoch : float;
  epochs : int;
  tasks : int;
  spec_distance : int;
}

let profile (p : Ir.Program.t) env =
  let res = Ir.Profile.run p env in
  let epochs = res.Ir.Profile.total_invocations in
  let tasks = res.Ir.Profile.total_tasks in
  let avg = if epochs = 0 then 0. else float_of_int tasks /. float_of_int epochs in
  let spec_distance =
    match res.Ir.Profile.min_task_distance with
    | None -> max_int / 4
    | Some d -> Stdlib.max 1 d
  in
  {
    min_task_distance = res.Ir.Profile.min_task_distance;
    avg_tasks_per_epoch = avg;
    epochs;
    tasks;
    spec_distance;
  }

let profitable t ~workers =
  match t.min_task_distance with None -> true | Some d -> d >= workers

let pp ppf t =
  Format.fprintf ppf
    "@[<v>profile: %d epochs, %d tasks (%.1f tasks/epoch)@,min dependence distance: %s@,speculative range: %d tasks@]"
    t.epochs t.tasks t.avg_tasks_per_epoch
    (match t.min_task_distance with None -> "*" | Some d -> string_of_int d)
    t.spec_distance
