(** Regeneration of the evaluation tables. *)

val tab5_1 : unit -> string
(** Benchmark details: suite, function, execution share, inner-loop plan,
    DOMORE / SPECCROSS applicability (measured, with the mechanism). *)

val tab5_2 : unit -> string
(** Scheduler/worker ratio for the DOMORE benchmarks. *)

val tab5_3 : unit -> string
(** Tasks, epochs, checking requests and minimum dependence distance
    (train and ref inputs) for the SPECCROSS benchmarks. *)
