type t = { id : string; title : string; render : unit -> string }

let all =
  [
    { id = "fig1.4"; title = "Execution plans with and without barriers"; render = Figures.fig1_4 };
    { id = "fig2.2"; title = "Sensitivity to memory analysis"; render = Figures.fig2_2 };
    { id = "fig2.8"; title = "TLS vs DOACROSS/DSWP"; render = Figures.fig2_8 };
    { id = "fig3.3"; title = "CG with and without DOMORE"; render = Figures.fig3_3 };
    { id = "fig4.3"; title = "Barrier synchronization overhead"; render = Figures.fig4_3 };
    { id = "fig4.4"; title = "TM-style checking vs epoch rule"; render = Figures.fig4_4 };
    { id = "tab5.1"; title = "Benchmark details"; render = Tables.tab5_1 };
    { id = "tab5.2"; title = "Scheduler/worker ratio"; render = Tables.tab5_2 };
    { id = "fig5.1"; title = "DOMORE vs pthread barrier"; render = Figures.fig5_1 };
    { id = "fig5.2"; title = "SPECCROSS vs pthread barrier"; render = Figures.fig5_2 };
    { id = "tab5.3"; title = "Speculation statistics"; render = Tables.tab5_3 };
    { id = "fig5.3"; title = "Checkpointing frequency and misspeculation"; render = Figures.fig5_3 };
    { id = "fig5.4"; title = "This work vs previous work"; render = Figures.fig5_4 };
    { id = "fig5.6"; title = "FLUIDANIMATE case study"; render = Figures.fig5_6 };
    { id = "abl.sig"; title = "Ablation: signature schemes"; render = Ablations.signatures };
    { id = "abl.sched"; title = "Ablation: DOMORE scheduling policies"; render = Ablations.policies };
    { id = "abl.machine"; title = "Ablation: memory contention model"; render = Ablations.contention };
    { id = "abl.ie"; title = "Ablation: inspector-executor vs DOMORE"; render = Ablations.inspector };
  ]

let normalize id =
  let id = String.lowercase_ascii (String.trim id) in
  let id =
    List.fold_left
      (fun acc (prefix, repl) ->
        if String.length acc >= String.length prefix
           && String.sub acc 0 (String.length prefix) = prefix
        then repl ^ String.sub acc (String.length prefix) (String.length acc - String.length prefix)
        else acc)
      id
      [ ("figure-", "fig"); ("figure", "fig"); ("table-", "tab"); ("table", "tab") ]
  in
  if String.length id > 0 && (id.[0] >= '0' && id.[0] <= '9') then "fig" ^ id else id

let find id =
  let target = normalize id in
  match List.find_opt (fun e -> e.id = target) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown experiment %s (known: %s)" id
           (String.concat ", " (List.map (fun e -> e.id) all)))

let ids = List.map (fun e -> e.id) all
