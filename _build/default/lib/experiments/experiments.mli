(** Registry of every reproduced table and figure. *)

type t = {
  id : string;  (** e.g. "fig5.2", "tab5.1" *)
  title : string;
  render : unit -> string;
}

val all : t list

val find : string -> t
(** Accepts "5.2", "fig5.2" or "figure-5.2" style ids.
    @raise Invalid_argument on unknown id. *)

val ids : string list
