module Ir = Xinv_ir
module Sim = Xinv_sim
module Par = Xinv_parallel
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv
module E = Xinv_ir.Expr

(* ---------- Figure 1.4: execution plans with and without barriers ---------- *)

(* The Figure 1.3 program: L1 writes A from B, L2 writes B from A, repeated. *)
let fig13_program trip outer =
  let l1 =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "B" E.i; Ir.Access.make "B" E.(i + c 1) ]
      ~writes:[ Ir.Access.make "A" E.i ]
      ~cost:(fun env -> Xinv_workloads.Wl_util.jittered ~base:800. ~salt:201 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        Ir.Memory.set_float mem "A" j
          (Float.rem
             (Ir.Memory.get_float mem "B" j +. Ir.Memory.get_float mem "B" (j + 1) +. 1.)
             Xinv_workloads.Wl_util.modulus))
      "A[i]=f(B)"
  in
  let l2 =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "A" E.i; Ir.Access.make "A" E.(i + c 1) ]
      ~writes:[ Ir.Access.make "B" E.(i + c 1) ]
      ~cost:(fun env -> Xinv_workloads.Wl_util.jittered ~base:800. ~salt:202 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        Ir.Memory.set_float mem "B" (j + 1)
          (Float.rem
             (Ir.Memory.get_float mem "A" j +. Ir.Memory.get_float mem "A" (j + 1) +. 2.)
             Xinv_workloads.Wl_util.modulus))
      "B[j]=g(A)"
  in
  let fresh () =
    Ir.Env.make
      (Ir.Memory.create
         [
           Ir.Memory.Floats ("A", Array.init (trip + 1) float_of_int);
           Ir.Memory.Floats ("B", Array.init (trip + 2) float_of_int);
         ])
  in
  ( Ir.Program.make ~name:"fig1.3" ~outer_trip:outer
      [
        Ir.Program.inner ~label:"L1" ~trip:(Ir.Program.const_trip trip) [ l1 ];
        Ir.Program.inner ~label:"L2" ~trip:(Ir.Program.const_trip trip) [ l2 ];
      ],
    fresh )

let fig1_4 () =
  let p, fresh = fig13_program 8 2 in
  let barrier_run =
    Par.Barrier_exec.run ~trace:true ~threads:4
      ~plan:(fun _ -> Par.Intra.Doall)
      p (fresh ())
  in
  let spec_env = fresh () in
  let cfg =
    {
      (Xinv_speccross.Runtime.default_config ~workers:4) with
      Xinv_speccross.Runtime.spec_distance = 64;
      sig_kind = Xinv_runtime.Signature.Segmented (Ir.Memory.bounds spec_env.Ir.Env.mem);
    }
  in
  let spec_run = Xinv_speccross.Runtime.run ~config:cfg ~trace:true p spec_env in
  String.concat "\n"
    [
      "Figure 1.4: parallel execution with barriers (left) and with speculative";
      "barriers removing the global synchronization (right).";
      "";
      "(a) pthread barriers:";
      Sim.Trace.render ~width:24 (Sim.Engine.segments barrier_run.Par.Run.engine);
      "";
      "(b) speculative barriers (SPECCROSS):";
      Sim.Trace.render ~width:24 (Sim.Engine.segments spec_run.Par.Run.engine);
      "";
      Printf.sprintf "makespan with barriers: %.0f cycles, without: %.0f cycles"
        barrier_run.Par.Run.makespan spec_run.Par.Run.makespan;
    ]

(* ---------- Figure 2.2: sensitivity to memory analysis ---------- *)

let fig2_2 () =
  let benches = [ "SYMM"; "JACOBI"; "FDTD" ] in
  let rows =
    List.map
      (fun name ->
        let wl = Wl.Registry.find name in
        let static_speedup =
          (Common.speedup_at wl Cx.Barrier 8).Cx.speedup
        in
        (* Dynamically allocated arrays: every index goes through a pointer
           the compiler cannot analyze; the static planner no longer proves
           DOALL, so the loop stays sequential. *)
        let wrapped = Ir.Opaque.wrap (wl.Wl.Workload.program Wl.Workload.Ref) in
        let statically_doall =
          match Par.Plan.choose wrapped with
          | choices -> List.for_all (fun c -> c.Par.Plan.technique = Par.Intra.Doall) choices
          | exception Failure _ -> false
        in
        let dyn_speedup =
          if statically_doall then static_speedup else 1.0
        in
        (name, static_speedup, dyn_speedup))
      benches
  in
  let bars =
    List.concat_map
      (fun (n, s, d) ->
        [ (n ^ " (static arrays)", s); (n ^ " (dynamic arrays)", d) ])
      rows
  in
  "Figure 2.2: DOALL speedup at 8 threads when arrays are statically\n\
   declared vs reached through dynamically allocated pointers (static\n\
   dependence analysis fails, parallelization is suppressed).\n\n"
  ^ Xinv_util.Tab.render_bars bars

(* ---------- Figure 2.8: TLS vs DOACROSS/DSWP ---------- *)

(* The Figure 2.6 loop: every iteration may depend on every other through an
   opaque pointer, but at runtime the accesses are all distinct.  Static
   techniques serialize; TLS speculates and commits in order. *)
let fig2_8 () =
  let outer = 6 and trip = 48 in
  let total = outer * trip in
  let p, fresh0 =
    Wl.Synth.make
      { Wl.Synth.default with Wl.Synth.seed = 77; cells = total; outer; trip;
        inners = 1; base_cost = 2000. }
  in
  let fresh () =
    let env = fresh0 () in
    for i = 0 to total - 1 do
      Ir.Memory.set_int env.Ir.Env.mem "tgt" i i
    done;
    env
  in
  let seq_env = fresh () in
  let seq_cost = Ir.Seq_interp.run p seq_env in
  let threads = 4 in
  let speed name run =
    let env = fresh () in
    let r : Par.Run.t = run env in
    assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
    (name, Par.Run.speedup ~seq_cost r)
  in
  let plan env =
    match Ir.Mtcg.generate p env with
    | Ir.Mtcg.Plan plan -> plan
    | Ir.Mtcg.Inapplicable r -> failwith r
  in
  let rows =
    [
      speed "DOACROSS" (fun env -> Par.Doacross.run ~threads p env);
      speed "DSWP" (fun env -> Par.Dswp.run ~threads p env);
      speed "TLS (speculative)" (fun env ->
          Par.Tls.run ~threads ~plan:(plan env) p env);
    ]
  in
  "Figure 2.8: a loop whose iterations may all depend on each other through
   an opaque pointer (Figure 2.6) at 4 threads.  Static techniques must
   serialize the dependence cycle; speculation breaks it and approaches the
   thread count.

"
  ^ Xinv_util.Tab.render_bars rows

(* ---------- Figure 4.4: TM-style checking vs SPECCROSS epochs ---------- *)

let fig4_4 () =
  let threads = 16 in
  let rows =
    List.map
      (fun name ->
        let wl = Wl.Registry.find name in
        let input = Common.spec_input wl in
        let program = wl.Wl.Workload.program input in
        let seq_env = wl.Wl.Workload.fresh_env input in
        let seq_cost = Ir.Seq_interp.run program seq_env in
        let train_input =
          match input with
          | Wl.Workload.Ref_spec -> Wl.Workload.Train_spec
          | _ -> Wl.Workload.Train
        in
        let prof =
          Xinv_speccross.Profiler.profile
            (wl.Wl.Workload.program train_input)
            (wl.Wl.Workload.fresh_env train_input)
        in
        let run tm =
          let env = wl.Wl.Workload.fresh_env input in
          let workers = threads - 1 in
          let cfg =
            {
              (Xinv_speccross.Runtime.default_config ~workers) with
              Xinv_speccross.Runtime.sig_kind =
                Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
              spec_distance =
                (match prof.Xinv_speccross.Profiler.min_task_distance with
                | Some d -> Stdlib.max workers d
                | None ->
                    Stdlib.max (4 * workers)
                      (int_of_float
                         (4. *. prof.Xinv_speccross.Profiler.avg_tasks_per_epoch)));
              mode_of = Cx.spec_mode_of_plan wl;
              tm_style = tm;
            }
          in
          let r = Xinv_speccross.Runtime.run ~config:cfg program env in
          assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
          ( Par.Run.speedup ~seq_cost r,
            Sim.Engine.total r.Par.Run.engine Sim.Category.Checker )
        in
        let s_epoch, c_epoch = run false in
        let s_tm, c_tm = run true in
        [
          name;
          Xinv_util.Tab.fmt_speedup s_epoch;
          Xinv_util.Tab.fmt_speedup s_tm;
          Printf.sprintf "%.1fx" (c_tm /. Stdlib.max 1. c_epoch);
        ])
      [ "JACOBI"; "FDTD"; "SYMM"; "LLUBENCH" ]
  in
  "Figure 4.4: TM-style speculation compares a task against overlapping
   tasks of its own invocation too — comparisons the epoch/task rule proves
   unnecessary (16 threads).

"
  ^ Xinv_util.Tab.render
      ~header:[ "benchmark"; "SPECCROSS"; "TM-style"; "checker work ratio" ]
      rows

(* ---------- Figure 3.3 / 5.1: DOMORE vs pthread barrier ---------- *)

let domore_vs_barrier wl =
  [
    Common.sweep ~label:"Pthread Barrier" wl Cx.Barrier;
    Common.sweep ~label:"DOMORE" wl Cx.Domore;
  ]

let fig3_3 () =
  let wl = Wl.Registry.find "CG" in
  Common.render_series
    ~title:"Figure 3.3: CG loop speedup with and without DOMORE"
    (domore_vs_barrier wl)

let fig5_1 () =
  let blocks =
    List.map
      (fun (wl : Wl.Workload.t) ->
        Common.render_series
          ~title:(Printf.sprintf "(%s)" wl.Wl.Workload.name)
          (domore_vs_barrier wl))
      (Wl.Registry.domore_set ())
  in
  "Figure 5.1: loop speedup, pthread-barrier parallelization vs DOMORE\n\n"
  ^ String.concat "\n\n" blocks

(* ---------- Figure 4.3: barrier overhead ---------- *)

let fig4_3 () =
  let rows =
    List.map
      (fun (wl : Wl.Workload.t) ->
        let input = Common.spec_input wl in
        let pct n =
          let o = Common.speedup_at ~input wl Cx.Barrier n in
          match o.Cx.run with
          | Some r -> Par.Run.barrier_overhead_pct r
          | None -> 0.
        in
        [
          wl.Wl.Workload.name;
          Xinv_util.Tab.fmt_f (pct 8) ^ "%";
          Xinv_util.Tab.fmt_f (pct 24) ^ "%";
        ])
      (Wl.Registry.speccross_set ())
  in
  "Figure 4.3: share of all cores' time spent at barriers\n\n"
  ^ Xinv_util.Tab.render ~header:[ "benchmark"; "8 threads"; "24 threads" ] rows

(* ---------- Figure 5.2: SPECCROSS vs pthread barrier ---------- *)

let fig5_2 () =
  let blocks =
    List.map
      (fun (wl : Wl.Workload.t) ->
        let input = Common.spec_input wl in
        Common.render_series
          ~title:(Printf.sprintf "(%s)" wl.Wl.Workload.name)
          [
            Common.sweep ~input ~label:"Pthread Barrier" wl Cx.Barrier;
            Common.sweep ~input ~label:"SpecCross" wl Cx.Speccross;
          ])
      (Wl.Registry.speccross_set ())
  in
  "Figure 5.2: loop speedup, pthread-barrier parallelization vs SPECCROSS\n\n"
  ^ String.concat "\n\n" blocks

(* ---------- Figure 5.3: checkpointing frequency sweep ---------- *)

let fig5_3 () =
  let counts = [ 2; 5; 10; 25; 50; 100 ] in
  let set = Wl.Registry.speccross_set () in
  let geo f =
    Xinv_util.Stats.geomean
      (List.filter_map
         (fun (wl : Wl.Workload.t) ->
           match f wl with s when s > 0. -> Some s | _ -> None
           | exception Failure _ -> None)
         set)
  in
  let rows =
    List.map
      (fun count ->
        let at misspec (wl : Wl.Workload.t) =
          let input = Common.spec_input wl in
          let nepochs = Ir.Program.invocations (wl.Wl.Workload.program input) in
          let every = Stdlib.max 1 (nepochs / count) in
          let technique =
            if misspec then Cx.Speccross_inject (nepochs / 2) else Cx.Speccross
          in
          (Common.speedup_at ~input ~checkpoint_every:every wl technique 24).Cx.speedup
        in
        [
          string_of_int count;
          Xinv_util.Tab.fmt_speedup (geo (at false));
          Xinv_util.Tab.fmt_speedup (geo (at true));
        ])
      counts
  in
  "Figure 5.3: geomean loop speedup at 24 threads vs number of checkpoints,\n\
   without misspeculation and with one misspeculation injected mid-run\n\n"
  ^ Xinv_util.Tab.render
      ~header:[ "checkpoints"; "no misspec."; "with misspec." ]
      rows

(* ---------- Figure 5.4: best of this work vs previous work ---------- *)

let fig5_4 () =
  let best_of wl techniques ~input =
    List.fold_left
      (fun acc t ->
        match Cx.applicable t wl with
        | Error _ -> acc
        | Ok () -> (
            match Common.speedup_at ~input wl t 24 with
            | o -> Stdlib.max acc o.Cx.speedup
            | exception Failure _ -> acc))
      0. techniques
  in
  let bars =
    List.concat_map
      (fun (wl : Wl.Workload.t) ->
        let input = Common.spec_input wl in
        let ours = best_of wl [ Cx.Domore; Cx.Speccross ] ~input in
        let prev =
          best_of wl
            [ Cx.Barrier; Cx.Doacross; Cx.Dswp; Cx.Inspector; Cx.Tls ]
            ~input
        in
        [
          (wl.Wl.Workload.name ^ " (this work)", ours);
          (wl.Wl.Workload.name ^ " (previous)", prev);
        ])
      (Wl.Registry.all ()
      |> List.filter (fun (w : Wl.Workload.t) ->
             w.Wl.Workload.domore_expected || w.Wl.Workload.speccross_expected))
  in
  "Figure 5.4: best speedup at 24 threads, this work (DOMORE/SPECCROSS) vs\n\
   previous techniques (barrier-synchronized DOALL/DOANY/LOCALWRITE,\n\
   DOACROSS, DSWP, inspector-executor)\n\n"
  ^ Xinv_util.Tab.render_bars bars

(* ---------- Figure 5.6: FLUIDANIMATE strategies ---------- *)

let fluid_mode_domore (wl : Wl.Workload.t) label =
  match Wl.Workload.technique_of wl label with
  | Par.Intra.Localwrite -> Xinv_speccross.Runtime.M_domore Xinv_domore.Policy.Mem_partition
  | _ -> Xinv_speccross.Runtime.M_doall

let fluid_custom ~barriers threads =
  let wl = Wl.Registry.find "FLUIDANIMATE-2" in
  let program = wl.Wl.Workload.program Wl.Workload.Ref in
  let seq_env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
  let seq_cost = Ir.Seq_interp.run program seq_env in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
  let train_env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
  let prof =
    Xinv_speccross.Profiler.profile (wl.Wl.Workload.program Wl.Workload.Train) train_env
  in
  let workers = Stdlib.max 1 (threads - 1) in
  let cfg =
    {
      (Xinv_speccross.Runtime.default_config ~workers) with
      Xinv_speccross.Runtime.sig_kind =
        Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
      spec_distance =
        Stdlib.max workers prof.Xinv_speccross.Profiler.spec_distance;
      mode_of = fluid_mode_domore wl;
      non_spec_barriers = barriers;
    }
  in
  let r = Xinv_speccross.Runtime.run ~config:cfg program env in
  assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
  Par.Run.speedup ~seq_cost r

let fig5_6 () =
  let wl = Wl.Registry.find "FLUIDANIMATE-2" in
  let doany_plan label =
    match Wl.Workload.technique_of wl label with
    | Par.Intra.Localwrite -> Par.Intra.Doany
    | t -> t
  in
  let manual_doany threads =
    let program = wl.Wl.Workload.program Wl.Workload.Ref in
    let seq_env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
    let seq_cost = Ir.Seq_interp.run program seq_env in
    let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
    let r = Par.Barrier_exec.run ~threads ~plan:doany_plan program env in
    assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
    Par.Run.speedup ~seq_cost r
  in
  let series =
    [
      Common.sweep ~label:"LOCALWRITE+Barrier" wl Cx.Barrier;
      Common.sweep ~label:"LOCALWRITE+SpecCross" wl Cx.Speccross;
      {
        Common.label = "DOMORE+Barrier";
        points =
          List.map (fun n -> (n, fluid_custom ~barriers:true n)) Common.threads_axis;
      };
      {
        Common.label = "DOMORE+SpecCross";
        points =
          List.map (fun n -> (n, fluid_custom ~barriers:false n)) Common.threads_axis;
      };
      {
        Common.label = "MANUAL(DOANY+Barrier)";
        points = List.map (fun n -> (n, manual_doany n)) Common.threads_axis;
      };
    ]
  in
  Common.render_series
    ~title:"Figure 5.6: FLUIDANIMATE program speedup under different techniques"
    series
