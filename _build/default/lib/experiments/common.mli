(** Shared plumbing for the experiment harness. *)

val threads_axis : int list
(** 2, 4, ..., 24 — the x-axis of the dissertation's speedup figures. *)

val speedup_at :
  ?input:Xinv_workloads.Workload.input ->
  ?checkpoint_every:int ->
  Xinv_workloads.Workload.t ->
  Xinv_core.Crossinv.technique ->
  int ->
  Xinv_core.Crossinv.outcome
(** One verified run; raises [Failure] when verification fails, so a figure
    can never silently report numbers from a wrong execution. *)

type series = { label : string; points : (int * float) list }

val sweep :
  ?input:Xinv_workloads.Workload.input ->
  label:string ->
  Xinv_workloads.Workload.t ->
  Xinv_core.Crossinv.technique ->
  series
(** Speedups over the whole thread axis. *)

val render_series : title:string -> series list -> string
(** Aligned text rendering: one row per thread count, one column per series. *)

val spec_input : Xinv_workloads.Workload.t -> Xinv_workloads.Workload.input
(** The input the SPECCROSS experiments use ([Ref_spec] for CG). *)
