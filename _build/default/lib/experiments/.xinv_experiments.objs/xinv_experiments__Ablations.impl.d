lib/experiments/ablations.ml: Common List Printf Stdlib Xinv_core Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim Xinv_speccross Xinv_util Xinv_workloads
