lib/experiments/ablations.mli:
