lib/experiments/experiments.ml: Ablations Figures List Printf String Tables
