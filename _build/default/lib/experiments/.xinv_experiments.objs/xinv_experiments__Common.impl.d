lib/experiments/common.ml: List Printf String Xinv_core Xinv_util Xinv_workloads
