lib/experiments/figures.mli:
