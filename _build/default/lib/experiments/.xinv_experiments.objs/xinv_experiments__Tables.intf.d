lib/experiments/tables.mli:
