lib/experiments/common.mli: Xinv_core Xinv_workloads
