lib/experiments/figures.ml: Array Common Float List Printf Stdlib String Xinv_core Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim Xinv_speccross Xinv_util Xinv_workloads
