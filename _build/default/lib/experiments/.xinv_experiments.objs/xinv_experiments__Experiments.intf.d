lib/experiments/experiments.mli:
