(** Regeneration of every figure in the dissertation's evaluation (see
    DESIGN.md for the experiment index).  Each function returns the rendered
    text artifact. *)

val fig1_4 : unit -> string
(** Execution plans with and without barriers (trace of the Figure 1.3
    program). *)

val fig2_2 : unit -> string
(** Performance sensitivity to memory analysis: static vs dynamically
    allocated arrays. *)

val fig2_8 : unit -> string
(** TLS vs DOACROSS/DSWP on the Figure 2.6 loop. *)

val fig4_4 : unit -> string
(** TM-style checking vs SPECCROSS's epoch rule. *)

val fig3_3 : unit -> string
(** CG speedup, DOMORE vs pthread barrier. *)

val fig4_3 : unit -> string
(** Barrier overhead share at 8 and 24 threads for the SPECCROSS set. *)

val fig5_1 : unit -> string
(** DOMORE vs pthread barrier, six benchmarks, full thread axis. *)

val fig5_2 : unit -> string
(** SPECCROSS vs pthread barrier, eight benchmarks, full thread axis. *)

val fig5_3 : unit -> string
(** Geomean speedup vs number of checkpoints, with and without one injected
    misspeculation, 24 threads. *)

val fig5_4 : unit -> string
(** Best of this work vs best prior technique per benchmark. *)

val fig5_6 : unit -> string
(** FLUIDANIMATE under five parallelization strategies. *)
