module Ir = Xinv_ir
module Par = Xinv_parallel
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv

let tab5_1 () =
  let rows =
    List.map
      (fun (wl : Wl.Workload.t) ->
        let plan_str =
          wl.Wl.Workload.plan
          |> List.map (fun (_, t) -> Par.Intra.name t)
          |> List.sort_uniq String.compare
          |> String.concat "/"
        in
        let mark expected = function
          | Ok () -> if expected then "yes" else "yes (not evaluated)"
          | Error reason -> Printf.sprintf "no (%s)" reason
        in
        [
          wl.Wl.Workload.name;
          wl.Wl.Workload.suite;
          wl.Wl.Workload.func;
          Xinv_util.Tab.fmt_f ~d:1 wl.Wl.Workload.exec_pct;
          plan_str;
          mark wl.Wl.Workload.domore_expected (Cx.applicable Cx.Domore wl);
          mark wl.Wl.Workload.speccross_expected (Cx.applicable Cx.Speccross wl);
        ])
      (Wl.Registry.all ())
  in
  "Table 5.1: benchmark details and technique applicability\n\n"
  ^ Xinv_util.Tab.render
      ~header:
        [ "benchmark"; "suite"; "function"; "% exec"; "inner-loop plan"; "DOMORE"; "SPECCROSS" ]
      rows

let tab5_2 () =
  let rows =
    List.filter_map
      (fun (wl : Wl.Workload.t) ->
        match Cx.applicable Cx.Domore wl with
        | Error _ -> None
        | Ok () ->
            let o = Common.speedup_at wl Cx.Domore 24 in
            let ratio =
              match o.Cx.run with
              | Some r -> 100. *. Xinv_domore.Domore.scheduler_worker_ratio r
              | None -> 0.
            in
            Some [ wl.Wl.Workload.name; Xinv_util.Tab.fmt_f ~d:1 ratio ])
      (Wl.Registry.domore_set ())
  in
  "Table 5.2: scheduler busy time as a share of total worker work\n\n"
  ^ Xinv_util.Tab.render ~header:[ "benchmark"; "% of scheduler/worker" ] rows

let tab5_3 () =
  let rows =
    List.map
      (fun (wl : Wl.Workload.t) ->
        let input = Common.spec_input wl in
        let dist inp =
          let env = wl.Wl.Workload.fresh_env inp in
          let prof =
            Xinv_speccross.Profiler.profile (wl.Wl.Workload.program inp) env
          in
          match prof.Xinv_speccross.Profiler.min_task_distance with
          | None -> "*"
          | Some d -> string_of_int d
        in
        let train_input =
          match input with
          | Wl.Workload.Ref_spec -> Wl.Workload.Train_spec
          | _ -> Wl.Workload.Train
        in
        let train_dist = dist train_input in
        let ref_dist = dist input in
        let o = Common.speedup_at ~input wl Cx.Speccross 24 in
        let tasks, epochs, checks =
          match o.Cx.run with
          | Some r ->
              (r.Par.Run.tasks, r.Par.Run.invocations, r.Par.Run.checks)
          | None -> (0, 0, 0)
        in
        [
          wl.Wl.Workload.name;
          string_of_int tasks;
          string_of_int epochs;
          string_of_int checks;
          train_dist;
          ref_dist;
        ])
      (Wl.Registry.speccross_set ())
  in
  "Table 5.3: speculative execution statistics at 24 threads ('*': no\n\
   cross-invocation conflict manifested during profiling)\n\n"
  ^ Xinv_util.Tab.render
      ~header:
        [ "benchmark"; "# tasks"; "# epochs"; "# check requests"; "min dist (train)"; "min dist (ref)" ]
      rows
