(** Ablation studies over the design choices DESIGN.md calls out — beyond
    the dissertation's own figures. *)

val signatures : unit -> string
(** Signature scheme ablation (plain range vs per-array segmented vs Bloom
    vs exact) on the SPECCROSS benchmarks: false positives of the coarse
    schemes turn into misspeculation storms. *)

val policies : unit -> string
(** DOMORE iteration-scheduling policy ablation (round-robin vs memory
    partition vs least-loaded). *)

val contention : unit -> string
(** Sensitivity of the headline results to the machine model's memory
    contention factor. *)

val inspector : unit -> string
(** Inspector-executor vs DOMORE: what run-ahead across invocation
    boundaries buys over per-invocation runtime scheduling. *)
