lib/util/stats.mli:
