lib/util/tab.ml: Float List Printf Stdlib String
