lib/util/prng.mli:
