lib/util/heap.mli:
