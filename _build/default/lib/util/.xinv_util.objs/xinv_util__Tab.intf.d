lib/util/tab.mli:
