(** ASCII rendering of experiment tables and figure data series. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] is an aligned plain-text table.  All rows must have
    the same number of columns as the header. *)

val render_bars : ?width:int -> (string * float) list -> string
(** [render_bars items] renders one horizontal bar per labelled value, scaled
    to the maximum value. *)

val fmt_f : ?d:int -> float -> string
(** Fixed-point float formatting, default 2 decimals. *)

val fmt_speedup : float -> string
(** [fmt_speedup 3.14159] is ["3.14x"]. *)
