let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
      assert (List.for_all (fun x -> x > 0.) xs);
      let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
      exp (s /. float_of_int (List.length xs))

let minimum = function [] -> 0. | x :: xs -> List.fold_left Stdlib.min x xs

let maximum = function [] -> 0. | x :: xs -> List.fold_left Stdlib.max x xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

let round_to d x =
  let f = 10. ** float_of_int d in
  Float.round (x *. f) /. f

let pct part whole = if whole = 0. then 0. else 100. *. part /. whole
