(** Imperative binary min-heap.

    Used as the event queue of the discrete-event simulator.  Elements are
    ordered by a comparison function fixed at creation; ties are broken by
    insertion order, which makes simulator runs deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (ties broken FIFO). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [pop h] removes and returns a minimal element, or [None] if empty. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is the heap contents in unspecified order. *)
