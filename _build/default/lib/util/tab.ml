let render ~header rows =
  let ncols = List.length header in
  assert (List.for_all (fun r -> List.length r = ncols) rows);
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           cell ^ String.make (w - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows)

let render_bars ?(width = 50) items =
  let vmax = List.fold_left (fun acc (_, v) -> Stdlib.max acc v) 0. items in
  let lw =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 items
  in
  let bar (label, v) =
    let n =
      if vmax <= 0. then 0
      else int_of_float (Float.round (float_of_int width *. v /. vmax))
    in
    Printf.sprintf "%-*s | %s %.2f" lw label (String.make n '#') v
  in
  String.concat "\n" (List.map bar items)

let fmt_f ?(d = 2) x = Printf.sprintf "%.*f" d x

let fmt_speedup x = Printf.sprintf "%.2fx" x
