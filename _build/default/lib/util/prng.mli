(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every source of randomness in the repository flows through this module so
    that simulations, workload generation and property tests are reproducible
    from a single seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream; [t] advances. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits64 : t -> int64

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
