type 'a entry = { item : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; arr = [||]; len = 0; next_seq = 0 }

let size h = h.len

let is_empty h = h.len = 0

(* Order by user comparison, then insertion sequence: a stable heap. *)
let lt h a b =
  let c = h.cmp a.item b.item in
  c < 0 || (c = 0 && a.seq < b.seq)

let swap h i j =
  let t = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h h.arr.(i) h.arr.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && lt h h.arr.(l) h.arr.(!smallest) then smallest := l;
  if r < h.len && lt h h.arr.(r) h.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let narr = Array.make ncap h.arr.(0) in
  Array.blit h.arr 0 narr 0 h.len;
  h.arr <- narr

let push h x =
  let e = { item = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.len = 0 && Array.length h.arr = 0 then h.arr <- Array.make 16 e;
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      sift_down h 0
    end;
    Some top.item
  end

let peek h = if h.len = 0 then None else Some h.arr.(0).item

let clear h =
  h.len <- 0;
  h.next_seq <- 0

let to_list h =
  let rec go i acc = if i < 0 then acc else go (i - 1) (h.arr.(i).item :: acc) in
  go (h.len - 1) []
