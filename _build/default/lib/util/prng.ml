type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix64 z0 =
  let z = Int64.mul (Int64.logxor z0 (Int64.shift_right_logical z0 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let bits64 t = next t

let split t = { state = next t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value stays non-negative as a native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.mean *. log u
