(** Small numeric helpers for reporting experiment results. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list.  All inputs must be positive. *)

val minimum : float list -> float

val maximum : float list -> float

val stddev : float list -> float

val round_to : int -> float -> float
(** [round_to d x] rounds [x] to [d] decimal places. *)

val pct : float -> float -> float
(** [pct part whole] is [100 * part / whole] (0. when [whole] is 0). *)
